package ckks

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"eva/internal/ring"
)

// hoistTestSteps are the rotation steps with generated keys in the hoisting
// tests; the property test draws random multisets from them.
var hoistTestSteps = []int{1, 2, 3, 4, 5, 6, 7, 8, -1, -2, -3, 0}

func ciphertextsEqual(a, b *Ciphertext) bool {
	if a.Level != b.Level || a.Scale != b.Scale || len(a.Value) != len(b.Value) {
		return false
	}
	for i := range a.Value {
		if !a.Value[i].Equal(b.Value[i]) {
			return false
		}
	}
	return true
}

// TestRotateHoistedMatchesRotateLeft is the element-exactness property test:
// for random step multisets and random levels, every ciphertext returned by
// RotateHoisted must be bit-identical to the corresponding individual
// RotateLeft call (the hoisted decomposition commutes exactly with the Galois
// automorphism, so this is equality of RNS limbs, not approximate equality).
func TestRotateHoistedMatchesRotateLeft(t *testing.T) {
	tc := newTestContext(t, 11, []int{50, 40, 40}, 50, 1<<40, hoistTestSteps)
	va := tc.randomVector(3, 1)
	base := tc.encrypt(t, va)

	// One ciphertext per level, walked down the modulus chain.
	cts := []*Ciphertext{base}
	for l := base.Level; l > 0; l-- {
		down, err := tc.eval.ModSwitch(cts[len(cts)-1])
		if err != nil {
			t.Fatal(err)
		}
		cts = append(cts, down)
	}

	prop := func(rawKs []uint8, rawLevel uint8) bool {
		if len(rawKs) > 8 {
			rawKs = rawKs[:8]
		}
		ks := make([]int, len(rawKs))
		for i, v := range rawKs {
			ks[i] = hoistTestSteps[int(v)%len(hoistTestSteps)]
		}
		ct := cts[int(rawLevel)%len(cts)]

		batch, err := tc.eval.RotateHoisted(ct, ks)
		if err != nil {
			t.Logf("RotateHoisted(%v): %v", ks, err)
			return false
		}
		seen := make(map[int]bool)
		for _, k := range ks {
			seen[k] = true
			want, err := tc.eval.RotateLeft(ct, k)
			if err != nil {
				t.Logf("RotateLeft(%d): %v", k, err)
				return false
			}
			got, ok := batch[k]
			if !ok || !ciphertextsEqual(got, want) {
				t.Logf("step %d of %v differs from RotateLeft", k, ks)
				return false
			}
		}
		return len(batch) == len(seen)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestRotateHoistedErrors(t *testing.T) {
	tc := newTestContext(t, 11, []int{50, 40}, 50, 1<<40, []int{1})
	va := tc.randomVector(5, 1)
	ct := tc.encrypt(t, va)
	if _, err := tc.eval.RotateHoisted(ct, []int{1, 3}); err == nil {
		t.Error("RotateHoisted with a missing rotation key did not fail")
	}
	prod, err := tc.eval.Mul(ct, ct)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tc.eval.RotateHoisted(prod, []int{1}); err == nil {
		t.Error("RotateHoisted on a degree-2 ciphertext did not fail")
	}
	out, err := tc.eval.RotateHoisted(ct, nil)
	if err != nil || len(out) != 0 {
		t.Errorf("RotateHoisted with no steps = (%v, %v), want empty map", out, err)
	}
	trivial, err := tc.eval.RotateHoisted(ct, []int{0})
	if err != nil || len(trivial) != 1 {
		t.Fatalf("RotateHoisted([0]) = (%v, %v)", trivial, err)
	}
	if !ciphertextsEqual(trivial[0], ct) {
		t.Error("RotateHoisted step 0 is not a copy of the input")
	}
}

// TestRotateHoistedSteadyStateAllocs extends the pool_test.go guards to the
// shared decompose scratch: once the pools are warm, a hoisted batch must only
// allocate its result ciphertexts and batch bookkeeping, never the extended
// digit polynomials (level+1 polys + special limbs per call, which would
// dwarf everything else if they left the pool).
func TestRotateHoistedSteadyStateAllocs(t *testing.T) {
	// Pin the pool to one worker so the measurement sees the pooling
	// behavior, not the per-goroutine overhead of the batch fan-out (which
	// the race detector in particular inflates).
	ring.SetWorkers(1)
	t.Cleanup(func() { ring.SetWorkers(0) })
	tc := newTestContext(t, 11, []int{50, 40}, 50, 1<<40, []int{1, 2, 3, 4})
	va := tc.randomVector(7, 1)
	ct := tc.encrypt(t, va)
	ks := []int{1, 2, 3, 4}
	if _, err := tc.eval.RotateHoisted(ct, ks); err != nil { // warm the pools
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := tc.eval.RotateHoisted(ct, ks); err != nil {
			t.Fatal(err)
		}
	})
	// Four result ciphertexts (~10 objects each at this depth) plus the maps
	// and slices of the batch itself; the decompose scratch is pooled and
	// contributes nothing. Headroom: under -race, sync.Pool deliberately
	// drops a fraction of Puts, so some scratch reallocates.
	if allocs > 100 {
		t.Errorf("RotateHoisted(4 steps) allocates %.0f objects per op in steady state, want <= 100", allocs)
	}
}

// TestEvaluatorConcurrentHoisting hammers one shared evaluator (and through
// it the ring worker pool) from many goroutines, each running hoisted batches
// and checking bit-exactness against singleton rotations computed up front.
// Run with -race in CI.
func TestEvaluatorConcurrentHoisting(t *testing.T) {
	tc := newTestContext(t, 11, []int{50, 40, 40}, 50, 1<<40, []int{1, 2, 3, 4})
	va := tc.randomVector(9, 1)
	ct := tc.encrypt(t, va)
	ks := []int{1, 2, 3, 4}
	want := make(map[int]*Ciphertext, len(ks))
	for _, k := range ks {
		w, err := tc.eval.RotateLeft(ct, k)
		if err != nil {
			t.Fatal(err)
		}
		want[k] = w
	}

	const goroutines = 8
	const iters = 5
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				batch, err := tc.eval.RotateHoisted(ct, ks)
				if err != nil {
					errs <- err
					return
				}
				for _, k := range ks {
					if !ciphertextsEqual(batch[k], want[k]) {
						errs <- fmt.Errorf("concurrent RotateHoisted diverged from RotateLeft at step %d", k)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
