package ckks

import (
	"testing"
)

// TestCiphertextSerializationRoundTrip ships a ciphertext through the wire
// format and checks it still decrypts to the original message.
func TestCiphertextSerializationRoundTrip(t *testing.T) {
	tc := newTestContext(t, 12, []int{50, 40}, 50, 1<<40, nil)
	values := tc.randomVector(21, 0)
	ct := tc.encrypt(t, values)

	data, err := ct.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	restored := &Ciphertext{}
	if err := restored.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if restored.Level != ct.Level || restored.Scale != ct.Scale || restored.Degree() != ct.Degree() {
		t.Fatalf("metadata changed: %v vs %v", restored, ct)
	}
	requireClose(t, tc.decryptTo(t, restored), values, 1e-6, "restored ciphertext")

	// Restored ciphertexts participate in homomorphic operations.
	sum, err := tc.eval.Add(restored, ct)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float64, len(values))
	for i := range want {
		want[i] = 2 * values[i]
	}
	requireClose(t, tc.decryptTo(t, sum), want, 1e-6, "sum with restored ciphertext")
}

func TestPlaintextSerializationRoundTrip(t *testing.T) {
	tc := newTestContext(t, 11, []int{45}, 0, 1<<35, nil)
	values := tc.randomVector(22, 0)
	pt, err := tc.enc.Encode(values, tc.params.DefaultScale(), 0)
	if err != nil {
		t.Fatal(err)
	}
	data, err := pt.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	restored := &Plaintext{}
	if err := restored.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	requireClose(t, tc.enc.Decode(restored), values, 1e-6, "restored plaintext")
}

func TestKeySerializationRoundTrip(t *testing.T) {
	tc := newTestContext(t, 12, []int{50, 40}, 50, 1<<40, nil)

	pkData, err := tc.pk.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	pk := &PublicKey{}
	if err := pk.UnmarshalBinary(pkData); err != nil {
		t.Fatal(err)
	}
	// Encrypt under the restored public key and decrypt with the restored
	// secret key.
	skData, err := tc.sk.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	sk := &SecretKey{}
	if err := sk.UnmarshalBinary(skData); err != nil {
		t.Fatal(err)
	}
	values := tc.randomVector(23, 0)
	pt, _ := tc.enc.Encode(values, tc.params.DefaultScale(), tc.params.MaxLevel())
	enc := NewEncryptor(tc.params, pk, NewTestPRNG(77))
	ct, err := enc.Encrypt(pt)
	if err != nil {
		t.Fatal(err)
	}
	dec := NewDecryptor(tc.params, sk)
	requireClose(t, tc.enc.Decode(dec.Decrypt(ct)), values, 1e-6, "restored key pair")
}

// TestEvaluationKeySerializationRoundTrip ships the public evaluation keys
// (relinearization + rotation) through the wire format and checks that an
// evaluator armed only with the restored keys computes correctly — the
// client-keygen deployment model of the paper, where the server never sees
// the secret key.
func TestEvaluationKeySerializationRoundTrip(t *testing.T) {
	tc := newTestContext(t, 12, []int{50, 40}, 50, 1<<40, []int{1, 3})

	rlkData, err := tc.rlk.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	rlk := &RelinearizationKey{}
	if err := rlk.UnmarshalBinary(rlkData); err != nil {
		t.Fatal(err)
	}
	rtkData, err := tc.rtk.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	rtk := &RotationKeySet{}
	if err := rtk.UnmarshalBinary(rtkData); err != nil {
		t.Fatal(err)
	}
	if len(rtk.Keys) != len(tc.rtk.Keys) {
		t.Fatalf("rotation key count changed: got %d, want %d", len(rtk.Keys), len(tc.rtk.Keys))
	}

	eval := NewEvaluator(tc.params, EvaluationKeys{Rlk: rlk, Rtk: rtk})
	values := tc.randomVector(25, 0)
	ct := tc.encrypt(t, values)

	prod, err := eval.Mul(ct, ct)
	if err != nil {
		t.Fatal(err)
	}
	relin, err := eval.Relinearize(prod)
	if err != nil {
		t.Fatal(err)
	}
	squares := make([]float64, len(values))
	for i := range values {
		squares[i] = values[i] * values[i]
	}
	requireClose(t, tc.decryptTo(t, relin), squares, 1e-4, "relinearize with restored key")

	rot, err := eval.RotateLeft(ct, 3)
	if err != nil {
		t.Fatal(err)
	}
	rotated := make([]float64, len(values))
	for i := range values {
		rotated[i] = values[(i+3)%len(values)]
	}
	requireClose(t, tc.decryptTo(t, rot), rotated, 1e-4, "rotate with restored key")
}

func TestSerializationRejectsGarbage(t *testing.T) {
	ct := &Ciphertext{}
	if err := ct.UnmarshalBinary([]byte{0x00, 0x01}); err == nil {
		t.Error("expected error for wrong ciphertext magic")
	}
	pt := &Plaintext{}
	if err := pt.UnmarshalBinary([]byte{0xFF}); err == nil {
		t.Error("expected error for wrong plaintext magic")
	}
	pk := &PublicKey{}
	if err := pk.UnmarshalBinary(nil); err == nil {
		t.Error("expected error for empty public key payload")
	}
	sk := &SecretKey{}
	if err := sk.UnmarshalBinary([]byte{magicSecretKey}); err == nil {
		t.Error("expected error for truncated secret key payload")
	}
	rlk := &RelinearizationKey{}
	if err := rlk.UnmarshalBinary([]byte{magicCiphertext}); err == nil {
		t.Error("expected error for wrong relinearization-key magic")
	}
	rtk := &RotationKeySet{}
	if err := rtk.UnmarshalBinary([]byte{magicRotationKeys, 0xFF}); err == nil {
		t.Error("expected error for truncated rotation-key payload")
	}
	// Truncated but correctly tagged payload.
	tc := newTestContext(t, 11, []int{45}, 0, 1<<35, nil)
	good, _ := tc.encrypt(t, tc.randomVector(24, 0)).MarshalBinary()
	if err := ct.UnmarshalBinary(good[:len(good)/2]); err == nil {
		t.Error("expected error for truncated ciphertext payload")
	}
}
