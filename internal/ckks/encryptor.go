package ckks

import (
	"fmt"
)

// Encryptor encrypts plaintexts under a public key.
type Encryptor struct {
	params  *Parameters
	pk      *PublicKey
	sampler *sampler
}

// NewEncryptor returns an encryptor for the given public key; prng may be nil
// to use a secure default.
func NewEncryptor(params *Parameters, pk *PublicKey, prng *PRNG) *Encryptor {
	return &Encryptor{params: params, pk: pk, sampler: newSampler(params, prng)}
}

// Encrypt produces a fresh degree-1 ciphertext of the plaintext:
// (b·u + e0 + m, a·u + e1).
func (enc *Encryptor) Encrypt(pt *Plaintext) (*Ciphertext, error) {
	if pt == nil || pt.Value == nil {
		return nil, fmt.Errorf("ckks: encrypting nil plaintext")
	}
	if !pt.Value.IsNTT {
		return nil, fmt.Errorf("ckks: plaintext must be in NTT form")
	}
	params := enc.params
	r := params.RingQ()
	level := pt.Level

	u := enc.sampler.signedToPolyQ(enc.sampler.ternarySigned(), level)
	r.NTT(u)
	e0 := enc.sampler.signedToPolyQ(enc.sampler.gaussianSigned(), level)
	r.NTT(e0)
	e1 := enc.sampler.signedToPolyQ(enc.sampler.gaussianSigned(), level)
	r.NTT(e1)

	ct := NewCiphertext(params, 2, level, pt.Scale)
	r.MulCoeffs(enc.pk.B, u, ct.Value[0])
	r.Add(ct.Value[0], e0, ct.Value[0])
	r.Add(ct.Value[0], pt.Value, ct.Value[0])
	r.MulCoeffs(enc.pk.A, u, ct.Value[1])
	r.Add(ct.Value[1], e1, ct.Value[1])
	return ct, nil
}

// Decryptor decrypts ciphertexts with the secret key.
type Decryptor struct {
	params *Parameters
	sk     *SecretKey
}

// NewDecryptor returns a decryptor for the given secret key.
func NewDecryptor(params *Parameters, sk *SecretKey) *Decryptor {
	return &Decryptor{params: params, sk: sk}
}

// Decrypt evaluates c0 + c1·s (+ c2·s² for unrelinearized ciphertexts) and
// returns the resulting plaintext at the ciphertext's scale and level.
func (dec *Decryptor) Decrypt(ct *Ciphertext) *Plaintext {
	r := dec.params.RingQ()
	level := ct.Level
	acc := ct.Value[0].CopyNew()
	sPow := dec.sk.Value
	tmp := r.NewPoly(level)
	power := dec.sk.Value.CopyNew()
	for i := 1; i < len(ct.Value); i++ {
		if i > 1 {
			r.MulCoeffs(power, sPow, power)
		}
		r.MulCoeffs(ct.Value[i], power, tmp)
		tmp.IsNTT = true
		r.Add(acc, tmp, acc)
	}
	return &Plaintext{Value: acc, Scale: ct.Scale, Level: level}
}
