package ckks

import (
	"sync"

	"eva/internal/ring"
)

// polyPool recycles ring.Poly scratch buffers, keyed by level, so the
// per-instruction hot paths (key switching, rescaling, rotations) do not
// allocate multi-megabyte backing arrays on every homomorphic operation.
// Pooled polynomials come back with undefined coefficients and IsNTT
// cleared; callers must overwrite every slot or use GetZero.
type polyPool struct {
	pools []sync.Pool // index = level
}

func newPolyPool(r *ring.Ring) *polyPool {
	pp := &polyPool{pools: make([]sync.Pool, r.MaxLevel()+1)}
	for level := range pp.pools {
		pp.pools[level].New = func() any { return r.NewPoly(level) }
	}
	return pp
}

// Get returns a polynomial at the given level with undefined coefficients.
func (pp *polyPool) Get(level int) *ring.Poly {
	p := pp.pools[level].Get().(*ring.Poly)
	p.IsNTT = false
	return p
}

// GetZero returns a zeroed polynomial at the given level.
func (pp *polyPool) GetZero(level int) *ring.Poly {
	p := pp.Get(level)
	p.Zero()
	return p
}

// Put returns a polynomial to the pool. The caller must not use p afterward.
func (pp *polyPool) Put(p *ring.Poly) {
	if p != nil {
		pp.pools[p.Level()].Put(p)
	}
}

// coeffPool recycles single-limb coefficient buffers (length N), used for
// the special-prime residues in key switching. The buffers travel as
// *[]uint64 so a Get/Put round trip never re-boxes the slice header.
type coeffPool struct {
	pool sync.Pool
}

func newCoeffPool(n int) *coeffPool {
	return &coeffPool{pool: sync.Pool{New: func() any {
		buf := make([]uint64, n)
		return &buf
	}}}
}

// Get returns a length-N buffer with undefined contents.
func (cp *coeffPool) Get() *[]uint64 { return cp.pool.Get().(*[]uint64) }

// GetZero returns a zeroed length-N buffer.
func (cp *coeffPool) GetZero() *[]uint64 {
	b := cp.Get()
	clear(*b)
	return b
}

// Put returns a buffer to the pool. The caller must not use b afterward.
func (cp *coeffPool) Put(b *[]uint64) { cp.pool.Put(b) }
