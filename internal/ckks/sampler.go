package ckks

import (
	crand "crypto/rand"
	"encoding/binary"
	"math"
	"math/rand/v2"

	"eva/internal/ring"
)

// PRNG is the source of randomness used for key generation, encryption and
// error sampling. Tests inject a deterministic instance; production code uses
// NewPRNG, which seeds a ChaCha8 generator from crypto/rand.
type PRNG struct {
	rng *rand.Rand
}

// NewPRNG returns a PRNG seeded from the operating system entropy source.
func NewPRNG() *PRNG {
	var seed [32]byte
	if _, err := crand.Read(seed[:]); err != nil {
		// crypto/rand failing is unrecoverable for a cryptographic library.
		panic("ckks: reading entropy: " + err.Error())
	}
	return &PRNG{rng: rand.New(rand.NewChaCha8(seed))}
}

// NewTestPRNG returns a deterministic PRNG for reproducible tests and benchmarks.
func NewTestPRNG(seed uint64) *PRNG {
	var s [32]byte
	binary.LittleEndian.PutUint64(s[:8], seed)
	binary.LittleEndian.PutUint64(s[8:16], seed^0x9e3779b97f4a7c15)
	return &PRNG{rng: rand.New(rand.NewChaCha8(s))}
}

// Uint64 returns a uniform 64-bit value.
func (p *PRNG) Uint64() uint64 { return p.rng.Uint64() }

// NormFloat64 returns a normally distributed value with mean 0 and stddev 1.
func (p *PRNG) NormFloat64() float64 { return p.rng.NormFloat64() }

// sampler draws the polynomials needed by the scheme: uniform, ternary
// secrets, and discrete Gaussian errors.
type sampler struct {
	params *Parameters
	prng   *PRNG
}

func newSampler(params *Parameters, prng *PRNG) *sampler {
	if prng == nil {
		prng = NewPRNG()
	}
	return &sampler{params: params, prng: prng}
}

// uniformQ fills a level-`level` polynomial with uniform residues (NTT-domain
// semantics: a uniform polynomial is uniform in either domain).
func (s *sampler) uniformQ(level int, ntt bool) *ring.Poly {
	r := s.params.RingQ()
	p := r.NewPoly(level)
	for i := 0; i <= level; i++ {
		q := r.Moduli[i].Q
		bound := (^uint64(0) / q) * q
		for j := range p.Coeffs[i] {
			v := s.prng.Uint64()
			for v >= bound {
				v = s.prng.Uint64()
			}
			p.Coeffs[i][j] = v % q
		}
	}
	p.IsNTT = ntt
	return p
}

// uniformSpecial fills one limb over the special prime with uniform residues.
func (s *sampler) uniformSpecial() []uint64 {
	sp := s.params.SpecialModulus()
	out := make([]uint64, s.params.N())
	q := sp.Q
	bound := (^uint64(0) / q) * q
	for j := range out {
		v := s.prng.Uint64()
		for v >= bound {
			v = s.prng.Uint64()
		}
		out[j] = v % q
	}
	return out
}

// ternarySigned samples a ternary polynomial with entries in {-1,0,1}
// (uniform), returned as signed coefficients for later reduction across
// bases.
func (s *sampler) ternarySigned() []int64 {
	n := s.params.N()
	out := make([]int64, n)
	for j := 0; j < n; j++ {
		switch s.prng.Uint64() % 3 {
		case 0:
			out[j] = -1
		case 1:
			out[j] = 0
		default:
			out[j] = 1
		}
	}
	return out
}

// gaussianSigned samples a discrete Gaussian polynomial with standard
// deviation params.Sigma(), truncated at 6 sigma.
func (s *sampler) gaussianSigned() []int64 {
	n := s.params.N()
	sigma := s.params.Sigma()
	bound := 6 * sigma
	out := make([]int64, n)
	for j := 0; j < n; j++ {
		v := s.prng.NormFloat64() * sigma
		for math.Abs(v) > bound {
			v = s.prng.NormFloat64() * sigma
		}
		out[j] = int64(math.Round(v))
	}
	return out
}

// signedToPolyQ reduces signed coefficients into a level-`level` polynomial
// over the chain primes (coefficient domain).
func (s *sampler) signedToPolyQ(coeffs []int64, level int) *ring.Poly {
	r := s.params.RingQ()
	p := r.NewPoly(level)
	for i := 0; i <= level; i++ {
		q := r.Moduli[i].Q
		for j, c := range coeffs {
			p.Coeffs[i][j] = reduceSigned(c, q)
		}
	}
	return p
}

// signedToSpecial reduces signed coefficients modulo the special prime.
func (s *sampler) signedToSpecial(coeffs []int64) []uint64 {
	q := s.params.SpecialModulus().Q
	out := make([]uint64, len(coeffs))
	for j, c := range coeffs {
		out[j] = reduceSigned(c, q)
	}
	return out
}

// reduceSigned maps a signed integer to its residue in [0, q).
func reduceSigned(c int64, q uint64) uint64 {
	if c >= 0 {
		return uint64(c) % q
	}
	return q - (uint64(-c) % q)
}
