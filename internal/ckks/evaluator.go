package ckks

import (
	"fmt"
	"math"

	"eva/internal/ring"
)

// scaleTolerance is the maximum relative difference tolerated between the
// scales of addition operands. The EVA compiler guarantees operand scales
// match as powers of two; at run time the true scales may differ by the
// relative gap between a chain prime and its nearest power of two (largest
// for small primes in large rings), exactly as in the paper's SEAL executor,
// which records the power of two and absorbs the gap into the approximation
// error.
const scaleTolerance = 5e-2

// Evaluator performs homomorphic operations on ciphertexts. It corresponds to
// the per-instruction runtime the EVA executor drives; every method returns
// an error for exactly the conditions under which SEAL would throw a runtime
// exception, which is what the EVA compiler's validation passes must prevent.
type Evaluator struct {
	params *Parameters
	rlk    *RelinearizationKey
	rtk    *RotationKeySet

	// pool and buf recycle the scratch polynomials and special-prime limb
	// buffers of the key-switch/rescale hot paths across operations (and
	// across the executor's worker goroutines — sync.Pool is concurrent).
	pool *polyPool
	buf  *coeffPool
}

// EvaluationKeys bundles the public evaluation material the evaluator needs.
type EvaluationKeys struct {
	Rlk *RelinearizationKey
	Rtk *RotationKeySet
}

// NewEvaluator builds an evaluator; keys may be nil when the corresponding
// operations (relinearize, rotate) are not used.
func NewEvaluator(params *Parameters, keys EvaluationKeys) *Evaluator {
	return &Evaluator{
		params: params,
		rlk:    keys.Rlk,
		rtk:    keys.Rtk,
		pool:   newPolyPool(params.RingQ()),
		buf:    newCoeffPool(params.N()),
	}
}

// Params returns the evaluator's parameter set.
func (ev *Evaluator) Params() *Parameters { return ev.params }

func (ev *Evaluator) checkBinaryCt(a, b *Ciphertext) error {
	if a.Level != b.Level {
		return fmt.Errorf("ckks: operand level mismatch (%d vs %d): ciphertexts must have the same coefficient modulus", a.Level, b.Level)
	}
	return nil
}

func scalesMatch(a, b float64) bool {
	return math.Abs(a-b) <= scaleTolerance*math.Max(math.Abs(a), math.Abs(b))
}

// Add returns a + b element-wise. Both operands must be at the same level and
// scale (Constraints 1 and 2 of the paper).
func (ev *Evaluator) Add(a, b *Ciphertext) (*Ciphertext, error) {
	if err := ev.checkBinaryCt(a, b); err != nil {
		return nil, err
	}
	if !scalesMatch(a.Scale, b.Scale) {
		return nil, fmt.Errorf("ckks: addition operand scale mismatch (%g vs %g)", a.Scale, b.Scale)
	}
	size := len(a.Value)
	if len(b.Value) > size {
		size = len(b.Value)
	}
	r := ev.params.RingQ()
	out := NewCiphertext(ev.params, size, a.Level, a.Scale)
	for i := 0; i < size; i++ {
		switch {
		case i < len(a.Value) && i < len(b.Value):
			r.Add(a.Value[i], b.Value[i], out.Value[i])
		case i < len(a.Value):
			out.Value[i].Copy(a.Value[i])
		default:
			out.Value[i].Copy(b.Value[i])
		}
		out.Value[i].IsNTT = true
	}
	return out, nil
}

// Sub returns a - b element-wise under the same constraints as Add.
func (ev *Evaluator) Sub(a, b *Ciphertext) (*Ciphertext, error) {
	if err := ev.checkBinaryCt(a, b); err != nil {
		return nil, err
	}
	if !scalesMatch(a.Scale, b.Scale) {
		return nil, fmt.Errorf("ckks: subtraction operand scale mismatch (%g vs %g)", a.Scale, b.Scale)
	}
	size := len(a.Value)
	if len(b.Value) > size {
		size = len(b.Value)
	}
	r := ev.params.RingQ()
	out := NewCiphertext(ev.params, size, a.Level, a.Scale)
	for i := 0; i < size; i++ {
		switch {
		case i < len(a.Value) && i < len(b.Value):
			r.Sub(a.Value[i], b.Value[i], out.Value[i])
		case i < len(a.Value):
			out.Value[i].Copy(a.Value[i])
		default:
			r.Neg(b.Value[i], out.Value[i])
		}
		out.Value[i].IsNTT = true
	}
	return out, nil
}

// Negate returns -a.
func (ev *Evaluator) Negate(a *Ciphertext) (*Ciphertext, error) {
	r := ev.params.RingQ()
	out := NewCiphertext(ev.params, len(a.Value), a.Level, a.Scale)
	for i := range a.Value {
		r.Neg(a.Value[i], out.Value[i])
		out.Value[i].IsNTT = true
	}
	return out, nil
}

func (ev *Evaluator) checkPlain(a *Ciphertext, p *Plaintext) error {
	if p.Level < a.Level {
		return fmt.Errorf("ckks: plaintext level %d below ciphertext level %d", p.Level, a.Level)
	}
	if !p.Value.IsNTT {
		return fmt.Errorf("ckks: plaintext operand must be in NTT form")
	}
	return nil
}

// AddPlain returns a + p where p is a plaintext at the same scale.
func (ev *Evaluator) AddPlain(a *Ciphertext, p *Plaintext) (*Ciphertext, error) {
	if err := ev.checkPlain(a, p); err != nil {
		return nil, err
	}
	if !scalesMatch(a.Scale, p.Scale) {
		return nil, fmt.Errorf("ckks: plaintext addition scale mismatch (%g vs %g)", a.Scale, p.Scale)
	}
	r := ev.params.RingQ()
	out := a.CopyNew()
	r.Add(a.Value[0], p.Value, out.Value[0])
	out.Value[0].IsNTT = true
	return out, nil
}

// SubPlain returns a - p.
func (ev *Evaluator) SubPlain(a *Ciphertext, p *Plaintext) (*Ciphertext, error) {
	if err := ev.checkPlain(a, p); err != nil {
		return nil, err
	}
	if !scalesMatch(a.Scale, p.Scale) {
		return nil, fmt.Errorf("ckks: plaintext subtraction scale mismatch (%g vs %g)", a.Scale, p.Scale)
	}
	r := ev.params.RingQ()
	out := a.CopyNew()
	// out0 = a0 - p; higher components unchanged.
	tmp := r.NewPoly(a.Level)
	tmp.Copy(p.Value)
	r.Sub(a.Value[0], tmp, out.Value[0])
	out.Value[0].IsNTT = true
	return out, nil
}

// Mul multiplies two degree-1 ciphertexts, producing a degree-2 ciphertext
// whose scale is the product of the operand scales. Both operands must be
// degree 1 (Constraint 3) and at the same level (Constraint 1).
func (ev *Evaluator) Mul(a, b *Ciphertext) (*Ciphertext, error) {
	if err := ev.checkBinaryCt(a, b); err != nil {
		return nil, err
	}
	if a.Degree() != 1 || b.Degree() != 1 {
		return nil, fmt.Errorf("ckks: ciphertext multiplication requires degree-1 operands (got %d and %d); relinearize first", a.Degree(), b.Degree())
	}
	r := ev.params.RingQ()
	out := NewCiphertext(ev.params, 3, a.Level, a.Scale*b.Scale)
	// (a0 + a1 s)(b0 + b1 s) = a0b0 + (a0b1 + a1b0) s + a1b1 s².
	r.MulCoeffs(a.Value[0], b.Value[0], out.Value[0])
	r.MulCoeffs(a.Value[0], b.Value[1], out.Value[1])
	r.MulCoeffsAndAdd(a.Value[1], b.Value[0], out.Value[1])
	r.MulCoeffs(a.Value[1], b.Value[1], out.Value[2])
	return out, nil
}

// MulPlain multiplies a ciphertext by a plaintext; the result scale is the
// product of both scales.
func (ev *Evaluator) MulPlain(a *Ciphertext, p *Plaintext) (*Ciphertext, error) {
	if err := ev.checkPlain(a, p); err != nil {
		return nil, err
	}
	r := ev.params.RingQ()
	out := NewCiphertext(ev.params, len(a.Value), a.Level, a.Scale*p.Scale)
	for i := range a.Value {
		r.MulCoeffs(a.Value[i], p.Value, out.Value[i])
	}
	return out, nil
}

// Relinearize reduces a degree-2 ciphertext back to degree 1 using the
// relinearization key.
func (ev *Evaluator) Relinearize(a *Ciphertext) (*Ciphertext, error) {
	if a.Degree() == 1 {
		return a.CopyNew(), nil
	}
	if a.Degree() != 2 {
		return nil, fmt.Errorf("ckks: relinearization supports degree-2 ciphertexts, got degree %d", a.Degree())
	}
	if ev.rlk == nil {
		return nil, fmt.Errorf("ckks: no relinearization key available")
	}
	r := ev.params.RingQ()
	ks0, ks1, err := ev.keySwitch(a.Value[2], a.Level, ev.rlk.Key)
	if err != nil {
		return nil, err
	}
	out := NewCiphertext(ev.params, 2, a.Level, a.Scale)
	r.Add(a.Value[0], ks0, out.Value[0])
	r.Add(a.Value[1], ks1, out.Value[1])
	ev.pool.Put(ks0)
	ev.pool.Put(ks1)
	out.Value[0].IsNTT, out.Value[1].IsNTT = true, true
	return out, nil
}

// Rescale divides the ciphertext by the last prime of its modulus chain,
// dropping one level and dividing the scale accordingly (the RESCALE
// instruction). It fails at level 0, mirroring SEAL's runtime exception.
func (ev *Evaluator) Rescale(a *Ciphertext) (*Ciphertext, error) {
	if a.Level == 0 {
		return nil, fmt.Errorf("ckks: cannot rescale a level-0 ciphertext (modulus chain exhausted)")
	}
	r := ev.params.RingQ()
	q := ev.params.Qi()[a.Level]
	out := &Ciphertext{Value: make([]*ring.Poly, len(a.Value)), Scale: a.Scale / float64(q), Level: a.Level - 1}
	for i := range a.Value {
		tmp := ev.pool.Get(a.Level)
		tmp.Copy(a.Value[i])
		r.InvNTT(tmp)
		res := r.DivideByLastModulus(tmp)
		ev.pool.Put(tmp)
		r.NTT(res)
		out.Value[i] = res
	}
	return out, nil
}

// ModSwitch drops the last prime of the modulus chain without scaling the
// plaintext (the MODSWITCH instruction).
func (ev *Evaluator) ModSwitch(a *Ciphertext) (*Ciphertext, error) {
	if a.Level == 0 {
		return nil, fmt.Errorf("ckks: cannot modulus-switch a level-0 ciphertext")
	}
	r := ev.params.RingQ()
	out := &Ciphertext{Value: make([]*ring.Poly, len(a.Value)), Scale: a.Scale, Level: a.Level - 1}
	for i := range a.Value {
		out.Value[i] = r.DropLastModulus(a.Value[i])
	}
	return out, nil
}

// rotationElement resolves a rotation step to its Galois element and
// switching key, validating that the key exists and covers the level.
func (ev *Evaluator) rotationElement(k, level int) (uint64, *SwitchingKey, error) {
	if ev.rtk == nil {
		return 0, nil, fmt.Errorf("ckks: no rotation keys available")
	}
	galEl := ev.params.GaloisElementForRotation(k)
	swk, ok := ev.rtk.Keys[galEl]
	if !ok {
		return 0, nil, fmt.Errorf("ckks: missing rotation key for step %d (Galois element %d)", k, galEl)
	}
	if len(swk.BQ) < level+1 {
		return 0, nil, fmt.Errorf("ckks: switching key has %d digits, need %d", len(swk.BQ), level+1)
	}
	return galEl, swk, nil
}

// rotateFromDecomp produces the rotation of a by the Galois element galEl,
// reusing the shared decomposition h of a.Value[1]. Rotation is the Galois
// automorphism applied to both ciphertext components followed by a key switch
// of the rotated c1 back to the original secret; the automorphism commutes
// with the NTT, so it is applied directly in the NTT domain as a slot
// permutation — no InvNTT+NTT round trip.
func (ev *Evaluator) rotateFromDecomp(a *Ciphertext, h *hoistedDecomp, swk *SwitchingKey, galEl uint64) (*Ciphertext, error) {
	r := ev.params.RingQ()
	rot0 := ev.pool.Get(a.Level)
	r.AutomorphismNTT(a.Value[0], galEl, rot0)
	ks0, ks1, err := ev.keySwitchHoisted(h, swk, galEl)
	if err != nil {
		ev.pool.Put(rot0)
		return nil, err
	}
	// Assemble the result in place: the key-switch outputs become the
	// ciphertext components directly (they leave the pool for good), so the
	// batch path never zero-allocates a ciphertext or copies a limb.
	r.Add(rot0, ks0, ks0)
	ev.pool.Put(rot0)
	ks0.IsNTT, ks1.IsNTT = true, true
	return &Ciphertext{Value: []*ring.Poly{ks0, ks1}, Scale: a.Scale, Level: a.Level}, nil
}

// RotateHoisted rotates a by every step in ks, sharing one decomposition of
// c1 across the whole batch (Halevi–Shoup hoisting): the InvNTT + per-digit
// mod-up + forward NTTs run once, and each Galois element only pays a slot
// permutation, the key inner product, and the final mod-down. The per-element
// work is fanned across the ring worker pool. Results are keyed by step;
// duplicate steps collapse to one entry. Each result is bit-identical to the
// corresponding RotateLeft call.
func (ev *Evaluator) RotateHoisted(a *Ciphertext, ks []int) (map[int]*Ciphertext, error) {
	if a.Degree() != 1 {
		return nil, fmt.Errorf("ckks: rotation requires a degree-1 ciphertext; relinearize first")
	}
	out := make(map[int]*Ciphertext, len(ks))
	type rotElem struct {
		k     int
		galEl uint64
		swk   *SwitchingKey
	}
	seen := make(map[int]struct{}, len(ks))
	elems := make([]rotElem, 0, len(ks))
	for _, k := range ks {
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		if k%ev.params.Slots() == 0 {
			out[k] = a.CopyNew()
			continue
		}
		galEl, swk, err := ev.rotationElement(k, a.Level)
		if err != nil {
			return nil, err
		}
		elems = append(elems, rotElem{k, galEl, swk})
	}
	if len(elems) == 0 {
		return out, nil
	}

	h, err := ev.decomposeNTT(a.Value[1], a.Level)
	if err != nil {
		return nil, err
	}
	cts := make([]*Ciphertext, len(elems))
	errs := make([]error, len(elems))
	ring.Parallel(len(elems), func(i int) {
		cts[i], errs[i] = ev.rotateFromDecomp(a, h, elems[i].swk, elems[i].galEl)
	})
	ev.releaseDecomp(h)
	for i := range elems {
		if errs[i] != nil {
			return nil, errs[i]
		}
		out[elems[i].k] = cts[i]
	}
	return out, nil
}

// RotateLeft cyclically rotates the plaintext slots left by k positions. The
// required Galois key must have been generated for this step count. It is the
// batch-of-one case of RotateHoisted, without the batch bookkeeping.
func (ev *Evaluator) RotateLeft(a *Ciphertext, k int) (*Ciphertext, error) {
	if a.Degree() != 1 {
		return nil, fmt.Errorf("ckks: rotation requires a degree-1 ciphertext; relinearize first")
	}
	if k%ev.params.Slots() == 0 {
		return a.CopyNew(), nil
	}
	galEl, swk, err := ev.rotationElement(k, a.Level)
	if err != nil {
		return nil, err
	}
	h, err := ev.decomposeNTT(a.Value[1], a.Level)
	if err != nil {
		return nil, err
	}
	out, err := ev.rotateFromDecomp(a, h, swk, galEl)
	ev.releaseDecomp(h)
	return out, err
}

// RotateRight rotates slots right by k positions.
func (ev *Evaluator) RotateRight(a *Ciphertext, k int) (*Ciphertext, error) {
	return ev.RotateLeft(a, -k)
}
