package ckks

import (
	"math"
	"math/rand"
	"testing"
)

func testParams(t testing.TB, logN int, logQi []int, logP int, scale float64) *Parameters {
	t.Helper()
	p, err := NewParameters(ParametersLiteral{LogN: logN, LogQi: logQi, LogP: logP, Scale: scale, AllowInsecure: true})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func maxAbsDiff(a, b []float64) float64 {
	m := 0.0
	for i := range a {
		d := math.Abs(a[i] - b[i])
		if d > m {
			m = d
		}
	}
	return m
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	params := testParams(t, 11, []int{40, 30}, 0, 1<<30)
	enc := NewEncoder(params)
	rng := rand.New(rand.NewSource(1))
	values := make([]float64, params.Slots())
	for i := range values {
		values[i] = rng.Float64()*4 - 2
	}
	pt, err := enc.Encode(values, params.DefaultScale(), params.MaxLevel())
	if err != nil {
		t.Fatal(err)
	}
	decoded := enc.Decode(pt)
	if d := maxAbsDiff(values, decoded); d > 1e-6 {
		t.Fatalf("round-trip error %g too large", d)
	}
}

func TestEncodeReplicatesShortInputs(t *testing.T) {
	params := testParams(t, 11, []int{40}, 0, 1<<30)
	enc := NewEncoder(params)
	values := []float64{1, 2, 3, 4}
	pt, err := enc.Encode(values, params.DefaultScale(), 0)
	if err != nil {
		t.Fatal(err)
	}
	decoded := enc.Decode(pt)
	for i := 0; i < params.Slots(); i++ {
		if math.Abs(decoded[i]-values[i%4]) > 1e-6 {
			t.Fatalf("slot %d = %g, want %g", i, decoded[i], values[i%4])
		}
	}
}

func TestEncodeErrors(t *testing.T) {
	params := testParams(t, 11, []int{40}, 0, 1<<30)
	enc := NewEncoder(params)
	if _, err := enc.Encode(nil, 1<<30, 0); err == nil {
		t.Error("expected error for empty input")
	}
	if _, err := enc.Encode(make([]float64, 3), 1<<30, 0); err == nil {
		t.Error("expected error for non power-of-two input")
	}
	if _, err := enc.Encode(make([]float64, params.Slots()*2), 1<<30, 0); err == nil {
		t.Error("expected error for oversized input")
	}
	if _, err := enc.Encode([]float64{1}, 1<<30, 5); err == nil {
		t.Error("expected error for bad level")
	}
	if _, err := enc.Encode([]float64{1}, -1, 0); err == nil {
		t.Error("expected error for negative scale")
	}
}

// TestPlaintextMultiplicationMatchesSlots checks that ring multiplication of
// two encoded plaintexts corresponds to the element-wise product of their
// slot values (the property batching relies on).
func TestPlaintextMultiplicationMatchesSlots(t *testing.T) {
	params := testParams(t, 11, []int{50, 50}, 0, 1<<25)
	enc := NewEncoder(params)
	r := params.RingQ()
	rng := rand.New(rand.NewSource(2))
	slots := params.Slots()
	a := make([]float64, slots)
	b := make([]float64, slots)
	want := make([]float64, slots)
	for i := range a {
		a[i] = rng.Float64()*2 - 1
		b[i] = rng.Float64()*2 - 1
		want[i] = a[i] * b[i]
	}
	pa, _ := enc.Encode(a, params.DefaultScale(), params.MaxLevel())
	pb, _ := enc.Encode(b, params.DefaultScale(), params.MaxLevel())
	prod := r.NewPoly(params.MaxLevel())
	r.MulCoeffs(pa.Value, pb.Value, prod)
	pt := &Plaintext{Value: prod, Scale: pa.Scale * pb.Scale, Level: params.MaxLevel()}
	got := enc.Decode(pt)
	if d := maxAbsDiff(want, got); d > 1e-5 {
		t.Fatalf("slot-wise product error %g too large", d)
	}
}

// TestAutomorphismRotatesSlots pins down the slot-rotation convention: the
// Galois automorphism X -> X^(5^k) must rotate the decoded vector left by k.
func TestAutomorphismRotatesSlots(t *testing.T) {
	params := testParams(t, 11, []int{50}, 0, 1<<20)
	enc := NewEncoder(params)
	r := params.RingQ()
	slots := params.Slots()
	values := make([]float64, slots)
	for i := range values {
		values[i] = float64(i)
	}
	pt, _ := enc.Encode(values, params.DefaultScale(), 0)
	for _, k := range []int{1, 3, 7} {
		rotated := r.NewPoly(0)
		src := pt.Value.CopyNew()
		r.InvNTT(src)
		r.Automorphism(src, params.GaloisElementForRotation(k), rotated)
		r.NTT(rotated)
		got := enc.Decode(&Plaintext{Value: rotated, Scale: pt.Scale, Level: 0})
		for i := 0; i < slots; i++ {
			want := values[(i+k)%slots]
			if math.Abs(got[i]-want) > 1e-4 {
				t.Fatalf("rotation by %d: slot %d = %g, want %g", k, i, got[i], want)
			}
		}
	}
}
