package ckks

import (
	"fmt"

	"eva/internal/ring"
)

// Ciphertext is an RLWE ciphertext in NTT form. Freshly encrypted ciphertexts
// hold two polynomials; the product of two ciphertexts holds three until it
// is relinearized (Constraint 3 of the paper).
type Ciphertext struct {
	Value []*ring.Poly
	Scale float64
	Level int
}

// NewCiphertext allocates a zero ciphertext of the given degree+1 size at the
// given level and scale.
func NewCiphertext(params *Parameters, size, level int, scale float64) *Ciphertext {
	ct := &Ciphertext{Value: make([]*ring.Poly, size), Scale: scale, Level: level}
	for i := range ct.Value {
		ct.Value[i] = params.RingQ().NewPoly(level)
		ct.Value[i].IsNTT = true
	}
	return ct
}

// Degree returns the ciphertext degree (number of polynomials minus one).
func (ct *Ciphertext) Degree() int { return len(ct.Value) - 1 }

// CopyNew returns a deep copy of the ciphertext.
func (ct *Ciphertext) CopyNew() *Ciphertext {
	out := &Ciphertext{Value: make([]*ring.Poly, len(ct.Value)), Scale: ct.Scale, Level: ct.Level}
	for i := range ct.Value {
		out.Value[i] = ct.Value[i].CopyNew()
	}
	return out
}

// MemoryBytes returns an estimate of the ciphertext's memory footprint, used
// by the executor's memory accounting.
func (ct *Ciphertext) MemoryBytes() int {
	total := 0
	for _, p := range ct.Value {
		total += 8 * (p.Level() + 1) * len(p.Coeffs[0])
	}
	return total
}

func (ct *Ciphertext) String() string {
	return fmt.Sprintf("Ciphertext{degree=%d, level=%d, scale=%g}", ct.Degree(), ct.Level, ct.Scale)
}
