package ckks

import (
	"fmt"
	"math"

	"eva/internal/ring"
)

// Ciphertext is an RLWE ciphertext in NTT form. Freshly encrypted ciphertexts
// hold two polynomials; the product of two ciphertexts holds three until it
// is relinearized (Constraint 3 of the paper).
type Ciphertext struct {
	Value []*ring.Poly
	Scale float64
	Level int
}

// NewCiphertext allocates a zero ciphertext of the given degree+1 size at the
// given level and scale.
func NewCiphertext(params *Parameters, size, level int, scale float64) *Ciphertext {
	ct := &Ciphertext{Value: make([]*ring.Poly, size), Scale: scale, Level: level}
	for i := range ct.Value {
		ct.Value[i] = params.RingQ().NewPoly(level)
		ct.Value[i].IsNTT = true
	}
	return ct
}

// Degree returns the ciphertext degree (number of polynomials minus one).
func (ct *Ciphertext) Degree() int { return len(ct.Value) - 1 }

// Validate checks that the ciphertext is well-formed for the parameter set:
// plausible degree, level within the modulus chain, positive scale, and
// every polynomial in NTT form with exactly level+1 limbs of length N.
// Deserialized ciphertexts from untrusted sources must pass this check
// before being handed to an evaluator — the ring layer assumes well-shaped
// NTT operands and does not re-check them.
func (ct *Ciphertext) Validate(params *Parameters) error {
	if len(ct.Value) < 2 || len(ct.Value) > 3 {
		return fmt.Errorf("ckks: ciphertext has %d polynomials; want 2 or 3", len(ct.Value))
	}
	if ct.Level < 0 || ct.Level > params.MaxLevel() {
		return fmt.Errorf("ckks: ciphertext level %d outside chain [0,%d]", ct.Level, params.MaxLevel())
	}
	if !(ct.Scale > 0) {
		return fmt.Errorf("ckks: ciphertext scale %v is not positive", ct.Scale)
	}
	n := params.N()
	for i, p := range ct.Value {
		if p == nil {
			return fmt.Errorf("ckks: ciphertext polynomial %d is nil", i)
		}
		if !p.IsNTT {
			return fmt.Errorf("ckks: ciphertext polynomial %d is not in NTT form", i)
		}
		if len(p.Coeffs) != ct.Level+1 {
			return fmt.Errorf("ckks: ciphertext polynomial %d has %d limbs; level %d needs %d", i, len(p.Coeffs), ct.Level, ct.Level+1)
		}
		for j, limb := range p.Coeffs {
			if len(limb) != n {
				return fmt.Errorf("ckks: ciphertext polynomial %d limb %d has %d coefficients; ring degree is %d", i, j, len(limb), n)
			}
		}
	}
	return nil
}

// CopyNew returns a deep copy of the ciphertext.
func (ct *Ciphertext) CopyNew() *Ciphertext {
	out := &Ciphertext{Value: make([]*ring.Poly, len(ct.Value)), Scale: ct.Scale, Level: ct.Level}
	for i := range ct.Value {
		out.Value[i] = ct.Value[i].CopyNew()
	}
	return out
}

// LogScale returns log2 of the ciphertext's scale — the unit the compiler's
// scale tracking (compile.Result.Scales) and the profiler's drift checks work
// in. Returns 0 for a non-positive (invalid) scale rather than -Inf/NaN so
// downstream aggregation stays finite.
func (ct *Ciphertext) LogScale() float64 {
	if !(ct.Scale > 0) {
		return 0
	}
	return math.Log2(ct.Scale)
}

// MemoryBytes returns an estimate of the ciphertext's memory footprint, used
// by the executor's memory accounting.
func (ct *Ciphertext) MemoryBytes() int {
	total := 0
	for _, p := range ct.Value {
		total += 8 * (p.Level() + 1) * len(p.Coeffs[0])
	}
	return total
}

func (ct *Ciphertext) String() string {
	return fmt.Sprintf("Ciphertext{degree=%d, level=%d, scale=%g}", ct.Degree(), ct.Level, ct.Scale)
}
