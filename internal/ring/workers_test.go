package ring

import (
	"runtime"
	"sync"
	"testing"

	"eva/internal/numth"
)

// setWorkersForTest pins the pool size for one test and restores the
// GOMAXPROCS default afterwards. Tests mutating the pool must not run in
// parallel with each other.
func setWorkersForTest(t *testing.T, n int) {
	t.Helper()
	SetWorkers(n)
	t.Cleanup(func() { SetWorkers(0) })
}

func TestSetWorkersDefault(t *testing.T) {
	SetWorkers(0)
	if got, want := Workers(), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("Workers() = %d after SetWorkers(0), want GOMAXPROCS = %d", got, want)
	}
	setWorkersForTest(t, 3)
	if got := Workers(); got != 3 {
		t.Fatalf("Workers() = %d after SetWorkers(3)", got)
	}
}

func TestParallelCoversEveryIndexOnce(t *testing.T) {
	setWorkersForTest(t, 4)
	for _, n := range []int{0, 1, 2, 3, 7, 64, 1000} {
		var mu sync.Mutex
		hits := make(map[int]int)
		Parallel(n, func(i int) {
			mu.Lock()
			hits[i]++
			mu.Unlock()
		})
		if len(hits) != n {
			t.Fatalf("Parallel(%d) visited %d distinct indices", n, len(hits))
		}
		for i, c := range hits {
			if c != 1 {
				t.Fatalf("Parallel(%d) visited index %d %d times", n, i, c)
			}
		}
	}
}

func TestParallelSingleWorkerRunsInline(t *testing.T) {
	setWorkersForTest(t, 1)
	seen := make([]bool, 100)
	Parallel(len(seen), func(i int) { seen[i] = true }) // no mutex: must be inline
	for i, ok := range seen {
		if !ok {
			t.Fatalf("index %d not visited", i)
		}
	}
}

func TestParallelPanicPropagates(t *testing.T) {
	setWorkersForTest(t, 4)
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want boom", r)
		}
	}()
	Parallel(64, func(i int) {
		if i == 17 {
			panic("boom")
		}
	})
	t.Fatal("Parallel returned after a task panicked")
}

func TestParallelNestedDoesNotDeadlock(t *testing.T) {
	setWorkersForTest(t, 2)
	var count sync.Map
	Parallel(8, func(i int) {
		Parallel(8, func(j int) {
			count.Store([2]int{i, j}, true)
		})
	})
	n := 0
	count.Range(func(_, _ any) bool { n++; return true })
	if n != 64 {
		t.Fatalf("nested Parallel ran %d of 64 tasks", n)
	}
}

// TestRingOpsParallelMatchSerial pins the worker-pool fan-out of every
// limb-parallel ring operation against the single-worker path on a ring large
// enough (N >= parallelMinDegree) for the fan-out to engage.
func TestRingOpsParallelMatchSerial(t *testing.T) {
	primes, err := numth.GenerateNTTPrimes(45, 12, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRing(12, primes)
	if err != nil {
		t.Fatal(err)
	}
	level := r.MaxLevel()
	a := randPoly(r, level, 1)
	b := randPoly(r, level, 2)
	galEl := uint64(3)

	type result struct {
		ntt, sum, prod, acc, auto, resc *Poly
	}
	runAll := func() result {
		var res result
		res.ntt = a.CopyNew()
		res.ntt.IsNTT = false
		r.NTT(res.ntt)
		res.sum = r.NewPoly(level)
		r.Add(a, b, res.sum)
		an, bn := a.CopyNew(), b.CopyNew()
		an.IsNTT, bn.IsNTT = true, true
		res.prod = r.NewPoly(level)
		r.MulCoeffs(an, bn, res.prod)
		res.acc = res.prod.CopyNew()
		r.MulCoeffsAndAdd(an, bn, res.acc)
		res.auto = r.NewPoly(level)
		r.AutomorphismNTT(an, galEl, res.auto)
		coeff := a.CopyNew()
		coeff.IsNTT = false
		res.resc = r.DivideByLastModulus(coeff)
		return res
	}

	setWorkersForTest(t, 1)
	serial := runAll()
	SetWorkers(8)
	parallel := runAll()

	for name, pair := range map[string][2]*Poly{
		"NTT":                 {serial.ntt, parallel.ntt},
		"Add":                 {serial.sum, parallel.sum},
		"MulCoeffs":           {serial.prod, parallel.prod},
		"MulCoeffsAndAdd":     {serial.acc, parallel.acc},
		"AutomorphismNTT":     {serial.auto, parallel.auto},
		"DivideByLastModulus": {serial.resc, parallel.resc},
	} {
		if !pair[0].Equal(pair[1]) {
			t.Errorf("%s: parallel result differs from serial", name)
		}
	}
}

func TestAutomorphismNTTSliceMatchesPolyPath(t *testing.T) {
	r := testRing(t, 8, 1)
	a := randPoly(r, 0, 7)
	a.IsNTT = true
	galEl := uint64(5)
	want := r.NewPoly(0)
	r.AutomorphismNTT(a, galEl, want)
	got := make([]uint64, r.N)
	r.AutomorphismNTTSlice(galEl, a.Coeffs[0], got)
	for j := range got {
		if got[j] != want.Coeffs[0][j] {
			t.Fatalf("slot %d: AutomorphismNTTSlice = %d, AutomorphismNTT = %d", j, got[j], want.Coeffs[0][j])
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("aliased AutomorphismNTTSlice did not panic")
		}
	}()
	r.AutomorphismNTTSlice(galEl, got, got)
}

func TestMulAddVecMatchesScalarLoop(t *testing.T) {
	r := testRing(t, 8, 1)
	m := r.Moduli[0]
	a := randPoly(r, 0, 3).Coeffs[0]
	b := randPoly(r, 0, 4).Coeffs[0]
	acc := randPoly(r, 0, 5).Coeffs[0]
	want := append([]uint64(nil), acc...)
	for j := range want {
		want[j] = numth.AddMod(want[j], m.br.MulMod(a[j], b[j]), m.Q)
	}
	// Odd tail length exercises the unroll remainder.
	n := len(acc) - 3
	MulAddVec(a[:n], b[:n], acc[:n], m.br)
	for j := 0; j < n; j++ {
		if acc[j] != want[j] {
			t.Fatalf("slot %d: MulAddVec = %d, scalar loop = %d", j, acc[j], want[j])
		}
	}
}

// TestWorkerPoolHammer drives every pooled operation from many goroutines at
// once (run with -race in CI): concurrent NTT/InvNTT/automorphism/accumulate
// calls on disjoint polynomials over one shared ring and worker pool.
func TestWorkerPoolHammer(t *testing.T) {
	primes, err := numth.GenerateNTTPrimes(45, 12, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRing(12, primes)
	if err != nil {
		t.Fatal(err)
	}
	setWorkersForTest(t, 4)
	level := r.MaxLevel()
	const goroutines = 8
	const iters = 10
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			a := randPoly(r, level, int64(g))
			ref := a.CopyNew()
			for it := 0; it < iters; it++ {
				r.NTT(a)
				acc := r.NewPoly(level)
				acc.IsNTT = true
				r.MulCoeffsAndAdd(a, a, acc)
				rot := r.NewPoly(level)
				r.AutomorphismNTT(a, 3, rot)
				r.InvNTT(a)
				if !a.Equal(ref) {
					errs <- "NTT round trip diverged under concurrency"
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
}

// TestInnerProductPairMatchesSingles checks that the paired inner-product
// kernel (one digit gather feeding both switching-key halves) is bit-identical
// to two independent InnerProductAutoNTT calls, for both the identity and a
// genuine Galois permutation, serial and parallel.
func TestInnerProductPairMatchesSingles(t *testing.T) {
	primes, err := numth.GenerateNTTPrimes(45, 12, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRing(12, primes)
	if err != nil {
		t.Fatal(err)
	}
	level := r.MaxLevel()
	const digits = 3
	es := make([]*Poly, digits)
	kbs := make([]*Poly, digits)
	kas := make([]*Poly, digits)
	for d := 0; d < digits; d++ {
		es[d] = randPoly(r, level, int64(10+d))
		es[d].IsNTT = true
		kbs[d] = randPoly(r, level, int64(20+d))
		kas[d] = randPoly(r, level, int64(30+d))
	}
	for _, galEl := range []uint64{1, 5} {
		for _, workers := range []int{1, 4} {
			setWorkersForTest(t, workers)
			wantB, wantA := r.NewPoly(level), r.NewPoly(level)
			r.InnerProductAutoNTT(es, kbs, galEl, wantB)
			r.InnerProductAutoNTT(es, kas, galEl, wantA)
			gotB, gotA := r.NewPoly(level), r.NewPoly(level)
			r.InnerProductAutoNTTPair(es, kbs, kas, galEl, gotB, gotA)
			if !gotB.Equal(wantB) || !gotA.Equal(wantA) {
				t.Fatalf("paired inner product diverged from singles (galEl=%d, workers=%d)", galEl, workers)
			}
			if !gotB.IsNTT || !gotA.IsNTT {
				t.Fatal("paired inner product did not mark outputs as NTT")
			}
		}
	}
}
