package ring

import (
	"math/big"
	"math/rand"
	"testing"

	"eva/internal/numth"
)

func testRing(t *testing.T, logN, nPrimes int) *Ring {
	t.Helper()
	primes, err := numth.GenerateNTTPrimes(45, logN, nPrimes, nil)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRing(logN, primes)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func randPoly(r *Ring, level int, seed int64) *Poly {
	rng := rand.New(rand.NewSource(seed))
	p := r.NewPoly(level)
	for i := range p.Coeffs {
		q := r.Moduli[i].Q
		for j := range p.Coeffs[i] {
			p.Coeffs[i][j] = rng.Uint64() % q
		}
	}
	return p
}

func TestNewRingErrors(t *testing.T) {
	if _, err := NewRing(1, []uint64{65537}); err == nil {
		t.Error("expected error for logN out of range")
	}
	if _, err := NewRing(12, nil); err == nil {
		t.Error("expected error for empty modulus chain")
	}
	primes, _ := numth.GenerateNTTPrimes(40, 12, 1, nil)
	if _, err := NewRing(12, []uint64{primes[0], primes[0]}); err == nil {
		t.Error("expected error for duplicate modulus")
	}
	if _, err := NewRing(12, []uint64{7}); err == nil {
		t.Error("expected error for non-NTT prime")
	}
}

func TestNTTRoundTrip(t *testing.T) {
	r := testRing(t, 10, 3)
	p := randPoly(r, 2, 7)
	orig := p.CopyNew()
	r.NTT(p)
	if !p.IsNTT {
		t.Fatal("IsNTT not set")
	}
	r.InvNTT(p)
	if !p.Equal(orig) {
		t.Fatal("NTT/InvNTT round trip changed the polynomial")
	}
}

// schoolbookNegacyclic multiplies two coefficient vectors modulo X^N+1 and q.
func schoolbookNegacyclic(a, b []uint64, q uint64) []uint64 {
	n := len(a)
	out := make([]uint64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			prod := numth.MulMod(a[i], b[j], q)
			k := i + j
			if k < n {
				out[k] = numth.AddMod(out[k], prod, q)
			} else {
				out[k-n] = numth.SubMod(out[k-n], prod, q)
			}
		}
	}
	return out
}

func TestNTTMultiplicationMatchesSchoolbook(t *testing.T) {
	r := testRing(t, 6, 2)
	a := randPoly(r, 1, 1)
	b := randPoly(r, 1, 2)
	want := make([][]uint64, 2)
	for i := 0; i < 2; i++ {
		want[i] = schoolbookNegacyclic(a.Coeffs[i], b.Coeffs[i], r.Moduli[i].Q)
	}
	r.NTT(a)
	r.NTT(b)
	out := r.NewPoly(1)
	r.MulCoeffs(a, b, out)
	r.InvNTT(out)
	for i := 0; i < 2; i++ {
		for j := range want[i] {
			if out.Coeffs[i][j] != want[i][j] {
				t.Fatalf("limb %d coeff %d: got %d want %d", i, j, out.Coeffs[i][j], want[i][j])
			}
		}
	}
}

func TestAddSubNegLinear(t *testing.T) {
	r := testRing(t, 8, 2)
	a := randPoly(r, 1, 3)
	b := randPoly(r, 1, 4)
	sum := r.NewPoly(1)
	diff := r.NewPoly(1)
	neg := r.NewPoly(1)
	r.Add(a, b, sum)
	r.Sub(sum, b, diff)
	if !diff.Equal(a) {
		t.Error("(a+b)-b != a")
	}
	r.Neg(a, neg)
	r.Add(a, neg, sum)
	for i := range sum.Coeffs {
		for j := range sum.Coeffs[i] {
			if sum.Coeffs[i][j] != 0 {
				t.Fatal("a + (-a) != 0")
			}
		}
	}
}

func TestMulCoeffsAndAdd(t *testing.T) {
	r := testRing(t, 7, 2)
	a := randPoly(r, 1, 5)
	b := randPoly(r, 1, 6)
	r.NTT(a)
	r.NTT(b)
	acc := r.NewPoly(1)
	acc.IsNTT = true
	r.MulCoeffsAndAdd(a, b, acc)
	r.MulCoeffsAndAdd(a, b, acc)
	once := r.NewPoly(1)
	r.MulCoeffs(a, b, once)
	twice := r.NewPoly(1)
	r.Add(once, once, twice)
	if !acc.Equal(twice) {
		t.Error("MulCoeffsAndAdd twice != 2*(a*b)")
	}
}

func TestMulScalar(t *testing.T) {
	r := testRing(t, 7, 2)
	a := randPoly(r, 1, 8)
	out := r.NewPoly(1)
	r.MulScalar(a, 3, out)
	sum := r.NewPoly(1)
	r.Add(a, a, sum)
	r.Add(sum, a, sum)
	if !out.Equal(sum) {
		t.Error("3*a != a+a+a")
	}
}

func TestAutomorphismComposition(t *testing.T) {
	r := testRing(t, 6, 1)
	a := randPoly(r, 0, 9)
	// Applying X->X^g1 then X->X^g2 equals X->X^(g1*g2 mod 2N).
	g1, g2 := uint64(5), uint64(9)
	tmp := r.NewPoly(0)
	out1 := r.NewPoly(0)
	r.Automorphism(a, g1, tmp)
	r.Automorphism(tmp, g2, out1)
	out2 := r.NewPoly(0)
	r.Automorphism(a, (g1*g2)%(2*uint64(r.N)), out2)
	if !out1.Equal(out2) {
		t.Error("automorphism composition mismatch")
	}
}

func TestAutomorphismIdentity(t *testing.T) {
	r := testRing(t, 6, 1)
	a := randPoly(r, 0, 10)
	out := r.NewPoly(0)
	r.Automorphism(a, 1, out)
	if !out.Equal(a) {
		t.Error("automorphism with galEl=1 is not the identity")
	}
}

func TestAutomorphismIsRingHomomorphism(t *testing.T) {
	// (a*b) under automorphism == automorphism(a) * automorphism(b)
	r := testRing(t, 6, 1)
	a := randPoly(r, 0, 11)
	b := randPoly(r, 0, 12)
	gal := uint64(5)

	prod := r.NewPoly(0)
	an, bn := a.CopyNew(), b.CopyNew()
	r.NTT(an)
	r.NTT(bn)
	r.MulCoeffs(an, bn, prod)
	r.InvNTT(prod)
	lhs := r.NewPoly(0)
	r.Automorphism(prod, gal, lhs)

	aAuto, bAuto := r.NewPoly(0), r.NewPoly(0)
	r.Automorphism(a, gal, aAuto)
	r.Automorphism(b, gal, bAuto)
	r.NTT(aAuto)
	r.NTT(bAuto)
	rhs := r.NewPoly(0)
	r.MulCoeffs(aAuto, bAuto, rhs)
	r.InvNTT(rhs)

	if !lhs.Equal(rhs) {
		t.Error("automorphism does not commute with multiplication")
	}
}

func TestDivideByLastModulus(t *testing.T) {
	// Construct a polynomial whose big-integer coefficients are known, and
	// check that rescaling divides them (with rounding) by the last prime.
	r := testRing(t, 5, 3)
	qs := make([]*big.Int, 3)
	bigQ := big.NewInt(1)
	for i, m := range r.Moduli {
		qs[i] = new(big.Int).SetUint64(m.Q)
		bigQ.Mul(bigQ, qs[i])
	}
	rng := rand.New(rand.NewSource(13))
	p := r.NewPoly(2)
	values := make([]*big.Int, r.N)
	for j := 0; j < r.N; j++ {
		// Small-ish values (positive and negative) so rounding is observable.
		v := big.NewInt(rng.Int63n(1 << 40))
		if rng.Intn(2) == 0 {
			v.Neg(v)
		}
		values[j] = v
		vm := new(big.Int).Mod(v, bigQ)
		for i, m := range r.Moduli {
			p.Coeffs[i][j] = new(big.Int).Mod(vm, qs[i]).Uint64()
			_ = m
		}
	}
	out := r.DivideByLastModulus(p)
	if out.Level() != 1 {
		t.Fatalf("level = %d, want 1", out.Level())
	}
	qL := r.Moduli[2].Q
	for j := 0; j < r.N; j++ {
		// Expected: round(v / qL), allow error of 1 from the RNS rounding trick.
		want := new(big.Float).Quo(new(big.Float).SetInt(values[j]), new(big.Float).SetUint64(qL))
		wantInt, _ := want.Int64()
		got := numth.CenteredRem(out.Coeffs[0][j], r.Moduli[0].Q)
		diff := got - wantInt
		if diff < -1 || diff > 1 {
			t.Fatalf("coeff %d: rescaled to %d, want about %d", j, got, wantInt)
		}
	}
}

func TestDropLastModulus(t *testing.T) {
	r := testRing(t, 5, 3)
	p := randPoly(r, 2, 14)
	out := r.DropLastModulus(p)
	if out.Level() != 1 {
		t.Fatalf("level = %d, want 1", out.Level())
	}
	for i := 0; i <= 1; i++ {
		for j := range out.Coeffs[i] {
			if out.Coeffs[i][j] != p.Coeffs[i][j] {
				t.Fatal("DropLastModulus changed remaining limbs")
			}
		}
	}
}

func TestExtendBasisSmall(t *testing.T) {
	r := testRing(t, 5, 3)
	srcQ := r.Moduli[2].Q
	rng := rand.New(rand.NewSource(15))
	small := make([]uint64, r.N)
	for j := range small {
		small[j] = rng.Uint64() % srcQ
	}
	out := r.NewPoly(1)
	r.ExtendBasisSmall(small, srcQ, out)
	for j := range small {
		c := numth.CenteredRem(small[j], srcQ)
		for i := 0; i <= 1; i++ {
			q := r.Moduli[i].Q
			var want uint64
			if c >= 0 {
				want = uint64(c) % q
			} else {
				want = numth.NegMod(uint64(-c)%q, q)
			}
			if out.Coeffs[i][j] != want {
				t.Fatalf("limb %d coeff %d: got %d want %d", i, j, out.Coeffs[i][j], want)
			}
		}
	}
}

func TestPolyHelpers(t *testing.T) {
	r := testRing(t, 5, 2)
	p := randPoly(r, 1, 16)
	cp := p.CopyNew()
	if !cp.Equal(p) {
		t.Error("CopyNew not equal to source")
	}
	cp.Coeffs[0][0]++
	if cp.Equal(p) {
		t.Error("mutating copy affected source comparison")
	}
	q := r.NewPoly(1)
	q.Copy(p)
	if !q.Equal(p) {
		t.Error("Copy not equal to source")
	}
	p.Zero()
	for i := range p.Coeffs {
		for j := range p.Coeffs[i] {
			if p.Coeffs[i][j] != 0 {
				t.Fatal("Zero left nonzero coefficient")
			}
		}
	}
	q.DropToLevel(0)
	if q.Level() != 0 {
		t.Error("DropToLevel failed")
	}
}
