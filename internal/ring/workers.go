package ring

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// This file implements the package-level bounded worker pool that every
// limb-parallel ring operation fans out on. The RNS representation makes the
// limbs of a polynomial fully independent, so the NTT, the element-wise
// operations, and the automorphisms all decompose into per-limb tasks; the
// CKKS layer additionally fans the per-Galois-element inner products of a
// hoisted rotation batch across the same pool.
//
// The pool is a semaphore, not a set of persistent goroutines: Parallel
// spawns up to Workers()-1 helpers per call, but only when a slot is free.
// When the pool is saturated — including when Parallel calls nest, as they do
// when a hoisted batch's per-element tasks run limb-parallel transforms — the
// caller simply executes the remaining work inline. Acquisition never blocks,
// so nesting cannot deadlock and the total helper count stays bounded no
// matter how many evaluator goroutines call in concurrently.

var (
	poolMu   sync.RWMutex
	poolSize int
	poolSem  chan struct{}
)

func init() {
	setWorkersLocked(runtime.GOMAXPROCS(0))
}

func setWorkersLocked(n int) {
	poolSize = n
	poolSem = make(chan struct{}, n-1)
}

// Workers returns the current size of the ring worker pool.
func Workers() int {
	poolMu.RLock()
	defer poolMu.RUnlock()
	return poolSize
}

// SetWorkers bounds the number of goroutines the ring layer may run
// concurrently (the -ring-workers knob of evaserve). n <= 0 resets the pool
// to GOMAXPROCS. Safe to call at any time: operations already in flight keep
// the semaphore they started with and drain into it.
func SetWorkers(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	poolMu.Lock()
	setWorkersLocked(n)
	poolMu.Unlock()
}

// Parallel runs f(0), ..., f(n-1), fanning the indices across up to
// Workers() goroutines (the caller counts as one and always participates).
// Indices are handed out by an atomic counter, so uneven task costs balance
// across workers. A panic in any task is re-raised on the calling goroutine
// after all tasks finish, preserving the recover-based error handling of
// callers like the executor.
func Parallel(n int, f func(int)) {
	if n <= 0 {
		return
	}
	poolMu.RLock()
	size, sem := poolSize, poolSem
	poolMu.RUnlock()
	if n == 1 || size <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}

	var (
		next      atomic.Int64
		wg        sync.WaitGroup
		panicOnce sync.Once
		panicVal  any
	)
	run := func() {
		defer func() {
			if r := recover(); r != nil {
				panicOnce.Do(func() { panicVal = r })
			}
		}()
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			f(i)
		}
	}

	helpers := size - 1
	if helpers > n-1 {
		helpers = n - 1
	}
acquire:
	for h := 0; h < helpers; h++ {
		select {
		case sem <- struct{}{}:
			wg.Add(1)
			go func() {
				defer func() {
					<-sem
					wg.Done()
				}()
				run()
			}()
		default:
			// Pool saturated (typically a nested Parallel): the caller
			// absorbs the rest of the work inline.
			break acquire
		}
	}
	run()
	wg.Wait()
	if panicVal != nil {
		panic(panicVal)
	}
}

// parallelMinDegree gates per-limb parallelism: rings below this degree do
// too little work per limb to amortize a goroutine handoff, so they run
// serial (which also keeps the steady-state allocation profile of small test
// rings flat).
const parallelMinDegree = 1 << 12

// limbsParallel reports whether an operation over this many limbs should fan
// out on the worker pool. Callers branch on it *before* building the closure
// they would hand to Parallel, so the serial small-ring path stays
// allocation-free (escaping closures are heap-allocated even if never run in
// parallel).
func (r *Ring) limbsParallel(limbs int) bool {
	return limbs > 1 && r.N >= parallelMinDegree && Workers() > 1
}
