package ring

import (
	"math/rand"
	"sync"
	"testing"

	"eva/internal/numth"
)

// The tests in this file pin every division-free fast path (lazy-reduction
// NTT, Barrett element-wise multiplication, Shoup scalar multiplication, the
// NTT-domain automorphism, and the precomputed rescale constants) against the
// retained Div64-based reference implementations.

func TestNTTMatchesReference(t *testing.T) {
	for _, logN := range []int{2, 4, 8, 10} {
		r := testRing(t, logN, 3)
		for seed := int64(0); seed < 4; seed++ {
			p := randPoly(r, 2, 100+seed)
			for i, m := range r.Moduli {
				fast := append([]uint64(nil), p.Coeffs[i]...)
				ref := append([]uint64(nil), p.Coeffs[i]...)
				m.NTT(fast)
				m.nttReference(ref)
				for j := range fast {
					if fast[j] != ref[j] {
						t.Fatalf("logN=%d limb %d coeff %d: lazy NTT %d, reference %d", logN, i, j, fast[j], ref[j])
					}
				}
				m.InvNTT(fast)
				m.invNTTReference(ref)
				for j := range fast {
					if fast[j] != ref[j] {
						t.Fatalf("logN=%d limb %d coeff %d: lazy InvNTT %d, reference %d", logN, i, j, fast[j], ref[j])
					}
				}
			}
		}
	}
}

// TestNTTOutputFullyReduced checks the fast transforms' output contract:
// every value strictly below q, even for adversarial all-(q-1) inputs.
func TestNTTOutputFullyReduced(t *testing.T) {
	r := testRing(t, 8, 2)
	for i, m := range r.Moduli {
		a := make([]uint64, r.N)
		for j := range a {
			a[j] = m.Q - 1
		}
		m.NTT(a)
		for j, v := range a {
			if v >= m.Q {
				t.Fatalf("limb %d: NTT output %d at %d not reduced below q=%d", i, v, j, m.Q)
			}
		}
		m.InvNTT(a)
		for j, v := range a {
			if v >= m.Q {
				t.Fatalf("limb %d: InvNTT output %d at %d not reduced below q=%d", i, v, j, m.Q)
			}
		}
	}
}

func TestMulCoeffsMatchesOracle(t *testing.T) {
	r := testRing(t, 8, 3)
	a := randPoly(r, 2, 200)
	b := randPoly(r, 2, 201)
	a.IsNTT, b.IsNTT = true, true
	out := r.NewPoly(2)
	r.MulCoeffs(a, b, out)
	acc := r.NewPoly(2)
	acc.IsNTT = true
	r.MulCoeffsAndAdd(a, b, acc)
	for i := range out.Coeffs {
		q := r.Moduli[i].Q
		for j := range out.Coeffs[i] {
			want := numth.MulMod(a.Coeffs[i][j], b.Coeffs[i][j], q)
			if out.Coeffs[i][j] != want {
				t.Fatalf("MulCoeffs limb %d coeff %d: got %d want %d", i, j, out.Coeffs[i][j], want)
			}
			if acc.Coeffs[i][j] != want {
				t.Fatalf("MulCoeffsAndAdd limb %d coeff %d: got %d want %d", i, j, acc.Coeffs[i][j], want)
			}
		}
	}
}

func TestMulScalarMatchesOracle(t *testing.T) {
	r := testRing(t, 8, 3)
	a := randPoly(r, 2, 202)
	rng := rand.New(rand.NewSource(203))
	for _, scalar := range []uint64{0, 1, 2, r.Moduli[0].Q - 1, rng.Uint64(), rng.Uint64()} {
		out := r.NewPoly(2)
		r.MulScalar(a, scalar, out)
		for i := range out.Coeffs {
			q := r.Moduli[i].Q
			for j := range out.Coeffs[i] {
				want := numth.MulMod(a.Coeffs[i][j], scalar%q, q)
				if out.Coeffs[i][j] != want {
					t.Fatalf("scalar %d limb %d coeff %d: got %d want %d", scalar, i, j, out.Coeffs[i][j], want)
				}
			}
		}
	}
}

// TestAutomorphismNTTMatchesCoefficientPath pins the NTT-domain permutation
// against the coefficient-domain automorphism followed by a forward NTT, for
// every odd Galois element of a small ring and for the rotation-shaped
// elements (powers of 5) of a larger one.
func TestAutomorphismNTTMatchesCoefficientPath(t *testing.T) {
	small := testRing(t, 4, 2)
	var galEls []uint64
	for g := uint64(1); g < 2*uint64(small.N); g += 2 {
		galEls = append(galEls, g)
	}
	checkAutoNTT(t, small, galEls)

	big := testRing(t, 9, 2)
	galEls = nil
	g := uint64(1)
	m := 2 * uint64(big.N)
	for i := 0; i < 10; i++ {
		galEls = append(galEls, g, m-g)
		g = g * 5 % m
	}
	checkAutoNTT(t, big, galEls)
}

func checkAutoNTT(t *testing.T, r *Ring, galEls []uint64) {
	t.Helper()
	a := randPoly(r, 1, 300)
	for _, gal := range galEls {
		want := r.NewPoly(1)
		r.Automorphism(a, gal, want)
		r.NTT(want)

		an := a.CopyNew()
		r.NTT(an)
		got := r.NewPoly(1)
		r.AutomorphismNTT(an, gal, got)
		if !got.IsNTT {
			t.Fatal("AutomorphismNTT did not set IsNTT")
		}
		if !got.Equal(want) {
			t.Fatalf("galEl=%d: NTT-domain automorphism disagrees with coefficient-domain path", gal)
		}
	}
}

func TestAutomorphismAliasingGuards(t *testing.T) {
	r := testRing(t, 4, 2)
	a := randPoly(r, 1, 301)
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s with aliased output did not panic", name)
			}
		}()
		f()
	}
	mustPanic("Automorphism", func() { r.Automorphism(a, 5, a) })
	// Partial aliasing (sharing one limb) must also be rejected.
	mixed := &Poly{Coeffs: [][]uint64{a.Coeffs[0], make([]uint64, r.N)}}
	mustPanic("Automorphism partial", func() { r.Automorphism(a, 5, mixed) })
	an := a.CopyNew()
	r.NTT(an)
	mustPanic("AutomorphismNTT", func() { r.AutomorphismNTT(an, 5, an) })
}

// TestElementwiseOpsAliasSafe documents the in-place audit for the
// element-wise operations: Add/Sub/Neg/MulCoeffs/MulScalar/AddScalar read
// slot j before writing slot j, so out may alias an operand.
func TestElementwiseOpsAliasSafe(t *testing.T) {
	r := testRing(t, 6, 2)
	fresh := func() (*Poly, *Poly) { return randPoly(r, 1, 302), randPoly(r, 1, 303) }

	a, b := fresh()
	want := r.NewPoly(1)
	r.Add(a, b, want)
	r.Add(a, b, a)
	if !a.Equal(want) {
		t.Error("in-place Add differs from out-of-place")
	}

	a, b = fresh()
	r.Sub(a, b, want)
	r.Sub(a, b, a)
	if !a.Equal(want) {
		t.Error("in-place Sub differs from out-of-place")
	}

	a, _ = fresh()
	r.Neg(a, want)
	r.Neg(a, a)
	if !a.Equal(want) {
		t.Error("in-place Neg differs from out-of-place")
	}

	a, b = fresh()
	a.IsNTT, b.IsNTT = true, true
	want.IsNTT = true
	r.MulCoeffs(a, b, want)
	r.MulCoeffs(a, b, a)
	if !a.Equal(want) {
		t.Error("in-place MulCoeffs differs from out-of-place")
	}

	a, _ = fresh()
	r.MulScalar(a, 12345, want)
	want.IsNTT = false
	r.MulScalar(a, 12345, a)
	if !a.Equal(want) {
		t.Error("in-place MulScalar differs from out-of-place")
	}

	a, _ = fresh()
	r.AddScalar(a, 777, want)
	r.AddScalar(a, 777, a)
	if !a.Equal(want) {
		t.Error("in-place AddScalar differs from out-of-place")
	}
}

// TestRescaleConstantsPrecomputed verifies the tables NewRing builds for
// DivideByLastModulus against freshly computed inverses, for every level.
func TestRescaleConstantsPrecomputed(t *testing.T) {
	r := testRing(t, 5, 4)
	for l := 1; l <= r.MaxLevel(); l++ {
		qL := r.Moduli[l].Q
		for i := 0; i < l; i++ {
			qi := r.Moduli[i].Q
			if want := numth.MustInvMod(qL%qi, qi); r.rescaleInv[l][i] != want {
				t.Fatalf("rescaleInv[%d][%d] = %d, want %d", l, i, r.rescaleInv[l][i], want)
			}
			if want := (qL >> 1) % qi; r.rescaleHalf[l][i] != want {
				t.Fatalf("rescaleHalf[%d][%d] = %d, want %d", l, i, r.rescaleHalf[l][i], want)
			}
			if want := numth.ShoupPrecomp(r.rescaleInv[l][i], qi); r.rescaleInvShoup[l][i] != want {
				t.Fatalf("rescaleInvShoup[%d][%d] = %d, want %d", l, i, r.rescaleInvShoup[l][i], want)
			}
		}
	}
}

// TestDivideByLastModulusAllocs is the no-inverse-recompute regression guard:
// the rescale hot path must allocate exactly its output polynomial (header,
// limb slice, one backing array) and nothing else — recomputing MustInvMod
// or any big-number scratch per call would show up here as extra allocations
// (and in BenchmarkDivideByLastModulus's -benchmem column as regressed ns/op).
func TestDivideByLastModulusAllocs(t *testing.T) {
	r := testRing(t, 8, 4)
	p := randPoly(r, 3, 304)
	allocs := testing.AllocsPerRun(50, func() {
		r.DivideByLastModulus(p)
	})
	if allocs > 3 {
		t.Errorf("DivideByLastModulus allocates %.0f objects per call, want <= 3 (output poly only)", allocs)
	}
}

// TestAutomorphismIndexCacheConcurrent hammers the Galois-permutation cache
// from many goroutines; run with -race this pins the cache's locking.
func TestAutomorphismIndexCacheConcurrent(t *testing.T) {
	r := testRing(t, 6, 2)
	a := randPoly(r, 1, 305)
	r.NTT(a)
	want := map[uint64]*Poly{}
	for _, gal := range []uint64{3, 5, 7, 9} {
		out := r.NewPoly(1)
		r.AutomorphismNTT(a, gal, out)
		want[gal] = out
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for it := 0; it < 20; it++ {
				gal := []uint64{3, 5, 7, 9}[(w+it)%4]
				out := r.NewPoly(1)
				r.AutomorphismNTT(a, gal, out)
				if !out.Equal(want[gal]) {
					t.Errorf("concurrent AutomorphismNTT(galEl=%d) mismatch", gal)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}
