// Package ring implements arithmetic in the cyclotomic quotient rings
// R_q = Z_q[X]/(X^N + 1) used by the RNS-CKKS scheme, with the coefficient
// modulus represented in residue number system (RNS) form as a chain of
// NTT-friendly primes. It provides the negacyclic number-theoretic transform
// (NTT), element-wise ring operations, Galois automorphisms (used for slot
// rotations) in both coefficient and NTT domain, and RNS rescaling (division
// by the last chain prime).
//
// The hot paths avoid hardware division entirely: the NTT butterflies use
// Shoup multiplication against precomputed twiddle quotients with lazy
// reduction (values ride in [0,4q) forward / [0,2q) inverse, with one final
// reduction pass), and the element-wise multiplies use Barrett reduction.
// The Div64-based reference transforms are retained (unexported) as oracles
// for the property tests.
package ring

import (
	"fmt"
	"math/bits"
	"sync"

	"eva/internal/numth"
)

// Modulus bundles one RNS prime together with the precomputed tables needed
// for the negacyclic NTT of length N modulo that prime: the twiddle factors
// in bit-reversed order, their Shoup quotients, and the Barrett constant.
type Modulus struct {
	Q           uint64        // the prime
	n           int           // transform length
	logN        int           // log2(n)
	br          numth.Barrett // Barrett constant for Q
	psiPows     []uint64      // psi^brv(i): powers of the 2N-th root of unity in bit-reversed order
	psiShoup    []uint64      // Shoup quotients of psiPows
	psiInv      []uint64      // psiInv^brv(i)
	psiInvShoup []uint64      // Shoup quotients of psiInv
	nInv        uint64        // N^{-1} mod Q
	nInvShoup   uint64        // Shoup quotient of nInv
}

// NewModulus precomputes the NTT tables for prime q and transform length
// n = 2^logN. q must satisfy q ≡ 1 (mod 2n).
func NewModulus(q uint64, logN int) (*Modulus, error) {
	n := 1 << uint(logN)
	if q%(2*uint64(n)) != 1 {
		return nil, fmt.Errorf("ring: prime %d is not 1 mod 2N for N=%d", q, n)
	}
	psi, err := numth.MinimalPrimitiveNthRoot(2*uint64(n), q)
	if err != nil {
		return nil, fmt.Errorf("ring: finding 2N-th root modulo %d: %w", q, err)
	}
	psiInv := numth.MustInvMod(psi, q)
	m := &Modulus{
		Q:           q,
		n:           n,
		logN:        logN,
		br:          numth.NewBarrett(q),
		psiPows:     make([]uint64, n),
		psiShoup:    make([]uint64, n),
		psiInv:      make([]uint64, n),
		psiInvShoup: make([]uint64, n),
		nInv:        numth.MustInvMod(uint64(n), q),
	}
	m.nInvShoup = numth.ShoupPrecomp(m.nInv, q)
	// Tables in bit-reversed order, as required by the CT/GS butterflies below.
	powsFwd := make([]uint64, n)
	powsInv := make([]uint64, n)
	powsFwd[0], powsInv[0] = 1, 1
	for i := 1; i < n; i++ {
		powsFwd[i] = numth.MulMod(powsFwd[i-1], psi, q)
		powsInv[i] = numth.MulMod(powsInv[i-1], psiInv, q)
	}
	for i := 0; i < n; i++ {
		r := numth.BitReverse(uint64(i), uint64(logN))
		m.psiPows[i] = powsFwd[r]
		m.psiInv[i] = powsInv[r]
		m.psiShoup[i] = numth.ShoupPrecomp(m.psiPows[i], q)
		m.psiInvShoup[i] = numth.ShoupPrecomp(m.psiInv[i], q)
	}
	return m, nil
}

// Barrett returns the precomputed Barrett constant for Q, for callers (such
// as the CKKS key switch) that run element-wise loops modulo this prime.
func (m *Modulus) Barrett() numth.Barrett { return m.br }

// ReduceCentered reduces the residues `small` (values in [0, srcQ)) into dst
// modulo m.Q using centered representatives: residues above srcQ/2 are
// lifted to their negative representative before reduction. This is the
// shared digit-lift of RNS basis extension — both ExtendBasisSmall and the
// CKKS key switch's special-prime path go through it.
func (m *Modulus) ReduceCentered(small []uint64, srcQ uint64, dst []uint64) {
	q := m.Q
	br := m.br
	srcModQ := srcQ % q
	halfSrc := srcQ / 2
	for j, v := range small {
		if v > halfSrc {
			// centered lift: v - srcQ (negative), reduced mod q
			dst[j] = numth.SubMod(br.ReduceWord(v), srcModQ, q)
		} else {
			dst[j] = br.ReduceWord(v)
		}
	}
}

// NTT transforms a (length N, coefficient representation, values reduced
// modulo m.Q) into the negacyclic NTT domain in place. The output is fully
// reduced to [0, Q).
//
// The butterflies are the lazy-reduction Cooley-Tukey form: values ride in
// [0, 4q), the twiddle product is a Shoup multiplication into [0, 2q), and a
// single final pass reduces everything to [0, q). This removes every
// hardware division from the transform.
func (m *Modulus) NTT(a []uint64) {
	q := m.Q
	twoQ := q << 1
	t := m.n
	for mm := 1; mm < m.n; mm <<= 1 {
		t >>= 1
		for i := 0; i < mm; i++ {
			j1 := 2 * i * t
			s := m.psiPows[mm+i]
			sh := m.psiShoup[mm+i]
			x := a[j1 : j1+t : j1+t]
			y := a[j1+t : j1+2*t : j1+2*t]
			// The butterflies are unrolled four wide: x and y are two
			// contiguous streams exactly one cache block apart per
			// iteration, so widening each step amortizes the loop control
			// and the bounds checks over four loads from each line.
			j := 0
			for ; j+4 <= t; j += 4 {
				u0, u1, u2, u3 := x[j], x[j+1], x[j+2], x[j+3]
				if u0 >= twoQ {
					u0 -= twoQ
				}
				if u1 >= twoQ {
					u1 -= twoQ
				}
				if u2 >= twoQ {
					u2 -= twoQ
				}
				if u3 >= twoQ {
					u3 -= twoQ
				}
				v0 := numth.MulModShoupLazy(y[j], s, sh, q)
				v1 := numth.MulModShoupLazy(y[j+1], s, sh, q)
				v2 := numth.MulModShoupLazy(y[j+2], s, sh, q)
				v3 := numth.MulModShoupLazy(y[j+3], s, sh, q)
				x[j], x[j+1], x[j+2], x[j+3] = u0+v0, u1+v1, u2+v2, u3+v3
				y[j] = u0 + twoQ - v0
				y[j+1] = u1 + twoQ - v1
				y[j+2] = u2 + twoQ - v2
				y[j+3] = u3 + twoQ - v3
			}
			for ; j < t; j++ {
				u := x[j]
				if u >= twoQ {
					u -= twoQ
				}
				v := numth.MulModShoupLazy(y[j], s, sh, q)
				x[j] = u + v
				y[j] = u + twoQ - v
			}
		}
	}
	for j, x := range a {
		if x >= twoQ {
			x -= twoQ
		}
		if x >= q {
			x -= q
		}
		a[j] = x
	}
}

// InvNTT transforms a from the NTT domain back to coefficient representation
// in place, output fully reduced to [0, Q). It is the lazy Gentleman-Sande
// form: values ride in [0, 2q), and the final multiplication by N^{-1} (a
// strict Shoup multiplication) performs the last reduction.
func (m *Modulus) InvNTT(a []uint64) {
	q := m.Q
	twoQ := q << 1
	t := 1
	for mm := m.n; mm > 1; mm >>= 1 {
		j1 := 0
		h := mm >> 1
		for i := 0; i < h; i++ {
			s := m.psiInv[h+i]
			sh := m.psiInvShoup[h+i]
			x := a[j1 : j1+t : j1+t]
			y := a[j1+t : j1+2*t : j1+2*t]
			j := 0
			for ; j+4 <= t; j += 4 {
				u0, v0 := x[j], y[j]
				u1, v1 := x[j+1], y[j+1]
				u2, v2 := x[j+2], y[j+2]
				u3, v3 := x[j+3], y[j+3]
				w0, w1, w2, w3 := u0+v0, u1+v1, u2+v2, u3+v3
				if w0 >= twoQ {
					w0 -= twoQ
				}
				if w1 >= twoQ {
					w1 -= twoQ
				}
				if w2 >= twoQ {
					w2 -= twoQ
				}
				if w3 >= twoQ {
					w3 -= twoQ
				}
				x[j], x[j+1], x[j+2], x[j+3] = w0, w1, w2, w3
				y[j] = numth.MulModShoupLazy(u0+twoQ-v0, s, sh, q)
				y[j+1] = numth.MulModShoupLazy(u1+twoQ-v1, s, sh, q)
				y[j+2] = numth.MulModShoupLazy(u2+twoQ-v2, s, sh, q)
				y[j+3] = numth.MulModShoupLazy(u3+twoQ-v3, s, sh, q)
			}
			for ; j < t; j++ {
				u := x[j]
				v := y[j]
				w := u + v
				if w >= twoQ {
					w -= twoQ
				}
				x[j] = w
				y[j] = numth.MulModShoupLazy(u+twoQ-v, s, sh, q)
			}
			j1 += 2 * t
		}
		t <<= 1
	}
	for j := range a {
		a[j] = numth.MulModShoup(a[j], m.nInv, m.nInvShoup, q)
	}
}

// nttReference is the original Div64-based transform, retained as the oracle
// the property tests pin the lazy-reduction NTT against.
func (m *Modulus) nttReference(a []uint64) {
	q := m.Q
	t := m.n
	for mm := 1; mm < m.n; mm <<= 1 {
		t >>= 1
		for i := 0; i < mm; i++ {
			j1 := 2 * i * t
			j2 := j1 + t
			s := m.psiPows[mm+i]
			for j := j1; j < j2; j++ {
				u := a[j]
				v := numth.MulMod(a[j+t], s, q)
				a[j] = numth.AddMod(u, v, q)
				a[j+t] = numth.SubMod(u, v, q)
			}
		}
	}
}

// invNTTReference is the original Div64-based inverse transform (oracle).
func (m *Modulus) invNTTReference(a []uint64) {
	q := m.Q
	t := 1
	for mm := m.n; mm > 1; mm >>= 1 {
		j1 := 0
		h := mm >> 1
		for i := 0; i < h; i++ {
			j2 := j1 + t
			s := m.psiInv[h+i]
			for j := j1; j < j2; j++ {
				u := a[j]
				v := a[j+t]
				a[j] = numth.AddMod(u, v, q)
				a[j+t] = numth.MulMod(numth.SubMod(u, v, q), s, q)
			}
			j1 += 2 * t
		}
		t <<= 1
	}
	for j := range a {
		a[j] = numth.MulMod(a[j], m.nInv, q)
	}
}

// Ring is the ambient ring R = Z[X]/(X^N+1) with a chain of RNS moduli. A
// polynomial may live at any level L, meaning it carries limbs 0..L of the
// chain (so level 0 means a single prime remains).
type Ring struct {
	N      int
	LogN   int
	Moduli []*Modulus

	// Rescale constants, precomputed so DivideByLastModulus never runs an
	// extended-Euclid inverse on the hot path. Indexed by the level being
	// dropped: for l >= 1 and i < l,
	//   rescaleInv[l][i]      = (q_l mod q_i)^{-1} mod q_i
	//   rescaleInvShoup[l][i] = Shoup quotient of rescaleInv[l][i]
	//   rescaleHalf[l][i]     = (q_l / 2) mod q_i
	rescaleInv      [][]uint64
	rescaleInvShoup [][]uint64
	rescaleHalf     [][]uint64

	// Cache of NTT-domain automorphism permutations keyed by Galois element.
	// The permutation is independent of the limb's prime, so one table
	// serves every level.
	autoMu  sync.RWMutex
	autoIdx map[uint64][]uint32
}

// NewRing builds a Ring of degree 2^logN over the given chain of primes.
// The order of primes is the order in which RESCALE consumes them from the
// end of the slice (i.e. primes[len-1] is dropped first).
func NewRing(logN int, primes []uint64) (*Ring, error) {
	if logN < 2 || logN > 17 {
		return nil, fmt.Errorf("ring: logN %d out of supported range [2,17]", logN)
	}
	if len(primes) == 0 {
		return nil, fmt.Errorf("ring: at least one modulus is required")
	}
	r := &Ring{
		N:       1 << uint(logN),
		LogN:    logN,
		Moduli:  make([]*Modulus, len(primes)),
		autoIdx: map[uint64][]uint32{},
	}
	seen := map[uint64]bool{}
	for i, q := range primes {
		if seen[q] {
			return nil, fmt.Errorf("ring: duplicate modulus %d", q)
		}
		seen[q] = true
		m, err := NewModulus(q, logN)
		if err != nil {
			return nil, err
		}
		r.Moduli[i] = m
	}
	r.rescaleInv = make([][]uint64, len(primes))
	r.rescaleInvShoup = make([][]uint64, len(primes))
	r.rescaleHalf = make([][]uint64, len(primes))
	for l := 1; l < len(primes); l++ {
		qL := primes[l]
		half := qL >> 1
		inv := make([]uint64, l)
		invShoup := make([]uint64, l)
		halfMod := make([]uint64, l)
		for i := 0; i < l; i++ {
			qi := primes[i]
			inv[i] = numth.MustInvMod(qL%qi, qi)
			invShoup[i] = numth.ShoupPrecomp(inv[i], qi)
			halfMod[i] = half % qi
		}
		r.rescaleInv[l] = inv
		r.rescaleInvShoup[l] = invShoup
		r.rescaleHalf[l] = halfMod
	}
	return r, nil
}

// MaxLevel is the highest level a polynomial in this ring can have.
func (r *Ring) MaxLevel() int { return len(r.Moduli) - 1 }

// Poly is an RNS polynomial: Coeffs[i][j] is the j-th coefficient modulo the
// i-th chain prime. IsNTT records the current representation.
type Poly struct {
	Coeffs [][]uint64
	IsNTT  bool
}

// NewPoly allocates a zero polynomial at the given level.
func (r *Ring) NewPoly(level int) *Poly {
	if level < 0 || level > r.MaxLevel() {
		panic(fmt.Sprintf("ring: level %d out of range [0,%d]", level, r.MaxLevel()))
	}
	coeffs := make([][]uint64, level+1)
	backing := make([]uint64, (level+1)*r.N)
	for i := range coeffs {
		coeffs[i], backing = backing[:r.N], backing[r.N:]
	}
	return &Poly{Coeffs: coeffs}
}

// Level returns the level (number of limbs minus one) of p.
func (p *Poly) Level() int { return len(p.Coeffs) - 1 }

// CopyNew returns a deep copy of p.
func (p *Poly) CopyNew() *Poly {
	out := &Poly{Coeffs: make([][]uint64, len(p.Coeffs)), IsNTT: p.IsNTT}
	for i := range p.Coeffs {
		out.Coeffs[i] = append([]uint64(nil), p.Coeffs[i]...)
	}
	return out
}

// Copy copies src into p. The levels must match.
func (p *Poly) Copy(src *Poly) {
	if len(p.Coeffs) != len(src.Coeffs) {
		panic("ring: level mismatch in Copy")
	}
	for i := range src.Coeffs {
		copy(p.Coeffs[i], src.Coeffs[i])
	}
	p.IsNTT = src.IsNTT
}

// DropToLevel truncates p to the given (lower or equal) level.
func (p *Poly) DropToLevel(level int) {
	if level+1 > len(p.Coeffs) {
		panic(fmt.Sprintf("ring: cannot raise level from %d to %d", p.Level(), level))
	}
	p.Coeffs = p.Coeffs[:level+1]
}

// Zero sets every coefficient of p to zero.
func (p *Poly) Zero() {
	for i := range p.Coeffs {
		clear(p.Coeffs[i])
	}
}

// Equal reports whether p and o have the same level, representation flag and
// coefficients.
func (p *Poly) Equal(o *Poly) bool {
	if p.IsNTT != o.IsNTT || len(p.Coeffs) != len(o.Coeffs) {
		return false
	}
	for i := range p.Coeffs {
		for j := range p.Coeffs[i] {
			if p.Coeffs[i][j] != o.Coeffs[i][j] {
				return false
			}
		}
	}
	return true
}

// NTT converts p to the NTT domain in place (no-op if already there). The
// limbs transform independently, so they fan out across the ring worker pool.
func (r *Ring) NTT(p *Poly) {
	if p.IsNTT {
		return
	}
	if r.limbsParallel(len(p.Coeffs)) {
		Parallel(len(p.Coeffs), func(i int) { r.Moduli[i].NTT(p.Coeffs[i]) })
	} else {
		for i := range p.Coeffs {
			r.Moduli[i].NTT(p.Coeffs[i])
		}
	}
	p.IsNTT = true
}

// InvNTT converts p to coefficient representation in place.
func (r *Ring) InvNTT(p *Poly) {
	if !p.IsNTT {
		return
	}
	if r.limbsParallel(len(p.Coeffs)) {
		Parallel(len(p.Coeffs), func(i int) { r.Moduli[i].InvNTT(p.Coeffs[i]) })
	} else {
		for i := range p.Coeffs {
			r.Moduli[i].InvNTT(p.Coeffs[i])
		}
	}
	p.IsNTT = false
}

func sameShape(a, b, out *Poly) int {
	l := len(a.Coeffs)
	if len(b.Coeffs) < l {
		l = len(b.Coeffs)
	}
	if len(out.Coeffs) < l {
		l = len(out.Coeffs)
	}
	return l
}

// Add sets out = a + b limb-wise (down to the smallest common level).
// Aliasing out with a or b is safe: every slot is read before it is written.
func (r *Ring) Add(a, b, out *Poly) {
	l := sameShape(a, b, out)
	if r.limbsParallel(l) {
		Parallel(l, func(i int) { addLimb(r.Moduli[i].Q, a.Coeffs[i], b.Coeffs[i], out.Coeffs[i]) })
	} else {
		for i := 0; i < l; i++ {
			addLimb(r.Moduli[i].Q, a.Coeffs[i], b.Coeffs[i], out.Coeffs[i])
		}
	}
	out.IsNTT = a.IsNTT
}

func addLimb(q uint64, ai, bi, oi []uint64) {
	for j := range oi {
		oi[j] = numth.AddMod(ai[j], bi[j], q)
	}
}

// Sub sets out = a - b limb-wise. Aliasing out with a or b is safe.
func (r *Ring) Sub(a, b, out *Poly) {
	l := sameShape(a, b, out)
	if r.limbsParallel(l) {
		Parallel(l, func(i int) { subLimb(r.Moduli[i].Q, a.Coeffs[i], b.Coeffs[i], out.Coeffs[i]) })
	} else {
		for i := 0; i < l; i++ {
			subLimb(r.Moduli[i].Q, a.Coeffs[i], b.Coeffs[i], out.Coeffs[i])
		}
	}
	out.IsNTT = a.IsNTT
}

func subLimb(q uint64, ai, bi, oi []uint64) {
	for j := range oi {
		oi[j] = numth.SubMod(ai[j], bi[j], q)
	}
}

// Neg sets out = -a limb-wise. Aliasing out with a is safe.
func (r *Ring) Neg(a, out *Poly) {
	if r.limbsParallel(len(out.Coeffs)) {
		Parallel(len(out.Coeffs), func(i int) { negLimb(r.Moduli[i].Q, a.Coeffs[i], out.Coeffs[i]) })
	} else {
		for i := range out.Coeffs {
			negLimb(r.Moduli[i].Q, a.Coeffs[i], out.Coeffs[i])
		}
	}
	out.IsNTT = a.IsNTT
}

func negLimb(q uint64, ai, oi []uint64) {
	for j := range oi {
		oi[j] = numth.NegMod(ai[j], q)
	}
}

// MulCoeffs sets out = a * b element-wise using Barrett reduction. Both
// operands must be in the NTT domain, in which case this realizes negacyclic
// polynomial multiplication. Aliasing out with a or b is safe.
func (r *Ring) MulCoeffs(a, b, out *Poly) {
	if !a.IsNTT || !b.IsNTT {
		panic("ring: MulCoeffs requires NTT-domain operands")
	}
	l := sameShape(a, b, out)
	if r.limbsParallel(l) {
		Parallel(l, func(i int) { mulLimb(r.Moduli[i].br, a.Coeffs[i], b.Coeffs[i], out.Coeffs[i]) })
	} else {
		for i := 0; i < l; i++ {
			mulLimb(r.Moduli[i].br, a.Coeffs[i], b.Coeffs[i], out.Coeffs[i])
		}
	}
	out.IsNTT = true
}

func mulLimb(br numth.Barrett, ai, bi, oi []uint64) {
	for j := range oi {
		oi[j] = br.MulMod(ai[j], bi[j])
	}
}

// MulCoeffsAndAdd sets out += a * b element-wise (NTT domain, Barrett
// reduction). Aliasing out with a or b is safe. This is the accumulator of
// the key-switch inner product, so each limb goes through the fused unrolled
// kernel MulAddVec.
func (r *Ring) MulCoeffsAndAdd(a, b, out *Poly) {
	if !a.IsNTT || !b.IsNTT {
		panic("ring: MulCoeffsAndAdd requires NTT-domain operands")
	}
	l := sameShape(a, b, out)
	if r.limbsParallel(l) {
		Parallel(l, func(i int) { MulAddVec(a.Coeffs[i], b.Coeffs[i], out.Coeffs[i], r.Moduli[i].br) })
	} else {
		for i := 0; i < l; i++ {
			MulAddVec(a.Coeffs[i], b.Coeffs[i], out.Coeffs[i], r.Moduli[i].br)
		}
	}
	out.IsNTT = true
}

// MulAddVec is the fused multiply-accumulate kernel of the key-switch inner
// product: acc[j] += a[j]*b[j] mod q for every j, with the loop unrolled four
// wide so the three streams advance a cache block at a time and the loop
// control amortizes over four Barrett reductions. It is exported for the CKKS
// layer, whose special-prime limbs are raw slices rather than ring
// polynomials.
func MulAddVec(a, b, acc []uint64, br numth.Barrett) {
	q := br.Q
	n := len(acc)
	if len(a) < n || len(b) < n {
		panic("ring: MulAddVec operand shorter than accumulator")
	}
	a, b = a[:n:n], b[:n:n]
	j := 0
	for ; j+4 <= n; j += 4 {
		p0 := br.MulMod(a[j], b[j])
		p1 := br.MulMod(a[j+1], b[j+1])
		p2 := br.MulMod(a[j+2], b[j+2])
		p3 := br.MulMod(a[j+3], b[j+3])
		acc[j] = numth.AddMod(acc[j], p0, q)
		acc[j+1] = numth.AddMod(acc[j+1], p1, q)
		acc[j+2] = numth.AddMod(acc[j+2], p2, q)
		acc[j+3] = numth.AddMod(acc[j+3], p3, q)
	}
	for ; j < n; j++ {
		acc[j] = numth.AddMod(acc[j], br.MulMod(a[j], b[j]), q)
	}
}

// maxLazyDigits bounds how many digit products the 128-bit lazy accumulator
// of the key-switch inner product can sum without overflow: each product of
// sub-2^60 residues is below 2^120, so up to 2^8 fit in 128 bits; 64 leaves
// headroom and bounds the kernel's stack-resident limb views.
const maxLazyDigits = 64

// InnerProductAutoVec computes acc[j] = Σ_t es[t][σ(j)]·ks[t][j] mod q, where
// σ is the slot permutation described by idx (nil for the identity; otherwise
// a table from AutomorphismNTTIndex). This is the fused hot loop of a hoisted
// key switch: the Galois automorphism is applied as a gather inside the
// accumulation instead of a separate permutation pass per digit, and the
// digit products accumulate lazily in 128 bits with a single Barrett
// reduction per output coefficient instead of one per product. acc is
// overwritten.
func InnerProductAutoVec(es, ks [][]uint64, idx []uint32, acc []uint64, br numth.Barrett) {
	if len(ks) < len(es) {
		panic("ring: fewer key digits than decomposition digits")
	}
	if len(es) > maxLazyDigits {
		panic("ring: too many digits for lazy inner-product accumulation")
	}
	n := len(acc)
	if idx == nil {
		for j := 0; j < n; j++ {
			var hi, lo, c uint64
			for t := range es {
				ph, pl := bits.Mul64(es[t][j], ks[t][j])
				lo, c = bits.Add64(lo, pl, 0)
				hi += ph + c
			}
			acc[j] = br.Reduce(hi, lo)
		}
	} else {
		for j := 0; j < n; j++ {
			src := idx[j]
			var hi, lo, c uint64
			for t := range es {
				ph, pl := bits.Mul64(es[t][src], ks[t][j])
				lo, c = bits.Add64(lo, pl, 0)
				hi += ph + c
			}
			acc[j] = br.Reduce(hi, lo)
		}
	}
}

// InnerProductAutoVecPair runs InnerProductAutoVec for two key digit sets
// sharing one gather of the decomposed digits: accB[j] = Σ_t es[t][σ(j)]·kbs[t][j]
// and accA[j] = Σ_t es[t][σ(j)]·kas[t][j]. A key switch always needs both
// halves of the RLWE samples, so pairing halves the digit loads (and the
// gather indirection) of the hottest loop in the backend.
func InnerProductAutoVecPair(es, kbs, kas [][]uint64, idx []uint32, accB, accA []uint64, br numth.Barrett) {
	if len(kbs) < len(es) || len(kas) < len(es) {
		panic("ring: fewer key digits than decomposition digits")
	}
	if len(es) > maxLazyDigits {
		panic("ring: too many digits for lazy inner-product accumulation")
	}
	n := len(accB)
	if len(accA) != n {
		panic("ring: paired accumulators must have equal length")
	}
	for j := 0; j < n; j++ {
		src := j
		if idx != nil {
			src = int(idx[j])
		}
		var bhi, blo, ahi, alo, c uint64
		for t := range es {
			e := es[t][src]
			ph, pl := bits.Mul64(e, kbs[t][j])
			blo, c = bits.Add64(blo, pl, 0)
			bhi += ph + c
			ph, pl = bits.Mul64(e, kas[t][j])
			alo, c = bits.Add64(alo, pl, 0)
			ahi += ph + c
		}
		accB[j] = br.Reduce(bhi, blo)
		accA[j] = br.Reduce(ahi, alo)
	}
}

// InnerProductAutoNTTPair is InnerProductAutoNTT for both halves of a
// switching key at once, sharing each digit gather between the two
// accumulations. outB and outA are fully overwritten.
func (r *Ring) InnerProductAutoNTTPair(es, kbs, kas []*Poly, galEl uint64, outB, outA *Poly) {
	if len(kbs) < len(es) || len(kas) < len(es) {
		panic("ring: fewer key digits than decomposition digits")
	}
	if len(es) > maxLazyDigits {
		panic("ring: too many digits for lazy inner-product accumulation")
	}
	if galEl%2 == 0 {
		panic("ring: Galois element must be odd")
	}
	for _, e := range es {
		if !e.IsNTT {
			panic("ring: InnerProductAutoNTTPair requires NTT-domain digits")
		}
	}
	var idx []uint32
	if galEl != 1 {
		idx = r.automorphismNTTIndex(galEl)
	}
	l := len(outB.Coeffs)
	if len(outA.Coeffs) < l {
		l = len(outA.Coeffs)
	}
	if r.limbsParallel(l) {
		Parallel(l, func(i int) {
			innerProductPairLimb(es, kbs, kas, i, idx, outB.Coeffs[i], outA.Coeffs[i], r.Moduli[i].br)
		})
	} else {
		for i := 0; i < l; i++ {
			innerProductPairLimb(es, kbs, kas, i, idx, outB.Coeffs[i], outA.Coeffs[i], r.Moduli[i].br)
		}
	}
	outB.IsNTT, outA.IsNTT = true, true
}

func innerProductPairLimb(es, kbs, kas []*Poly, limb int, idx []uint32, accB, accA []uint64, br numth.Barrett) {
	var ebuf, bbuf, abuf [maxLazyDigits][]uint64
	d := len(es)
	for t := 0; t < d; t++ {
		ebuf[t] = es[t].Coeffs[limb]
		bbuf[t] = kbs[t].Coeffs[limb]
		abuf[t] = kas[t].Coeffs[limb]
	}
	InnerProductAutoVecPair(ebuf[:d], bbuf[:d], abuf[:d], idx, accB, accA, br)
}

// InnerProductAutoNTT computes out = Σ_t φ_galEl(es[t]) ⊙ ks[t] over the
// limbs of out, entirely in the NTT domain: es are the decomposed digits of a
// key switch, ks the matching key digits, and galEl the Galois element whose
// slot permutation is fused into the accumulation (1 for the identity). out
// is fully overwritten. Limbs fan out across the worker pool.
func (r *Ring) InnerProductAutoNTT(es, ks []*Poly, galEl uint64, out *Poly) {
	if len(ks) < len(es) {
		panic("ring: fewer key digits than decomposition digits")
	}
	if len(es) > maxLazyDigits {
		panic("ring: too many digits for lazy inner-product accumulation")
	}
	if galEl%2 == 0 {
		panic("ring: Galois element must be odd")
	}
	for _, e := range es {
		if !e.IsNTT {
			panic("ring: InnerProductAutoNTT requires NTT-domain digits")
		}
	}
	var idx []uint32
	if galEl != 1 {
		idx = r.automorphismNTTIndex(galEl)
	}
	l := len(out.Coeffs)
	if r.limbsParallel(l) {
		Parallel(l, func(i int) { innerProductLimb(es, ks, i, idx, out.Coeffs[i], r.Moduli[i].br) })
	} else {
		for i := 0; i < l; i++ {
			innerProductLimb(es, ks, i, idx, out.Coeffs[i], r.Moduli[i].br)
		}
	}
	out.IsNTT = true
}

// innerProductLimb gathers limb views of the digit polynomials into
// stack-resident arrays (no heap allocation on the hot path) and runs the
// fused accumulation kernel on them.
func innerProductLimb(es, ks []*Poly, limb int, idx []uint32, acc []uint64, br numth.Barrett) {
	var ebuf, kbuf [maxLazyDigits][]uint64
	d := len(es)
	for t := 0; t < d; t++ {
		ebuf[t] = es[t].Coeffs[limb]
		kbuf[t] = ks[t].Coeffs[limb]
	}
	InnerProductAutoVec(ebuf[:d], kbuf[:d], idx, acc, br)
}

// AutomorphismNTTIndex returns the NTT-slot permutation table for the odd
// Galois element galEl, for use with InnerProductAutoVec. The returned slice
// is cached and shared; callers must treat it as read-only.
func (r *Ring) AutomorphismNTTIndex(galEl uint64) []uint32 {
	if galEl%2 == 0 {
		panic("ring: Galois element must be odd")
	}
	return r.automorphismNTTIndex(galEl)
}

// MulScalar sets out = a * scalar, where scalar is reduced modulo each limb.
// The scalar is fixed per limb, so each limb uses a Shoup multiplication
// against a quotient computed once per call. Aliasing out with a is safe.
func (r *Ring) MulScalar(a *Poly, scalar uint64, out *Poly) {
	if r.limbsParallel(len(out.Coeffs)) {
		Parallel(len(out.Coeffs), func(i int) { mulScalarLimb(r.Moduli[i].Q, scalar, a.Coeffs[i], out.Coeffs[i]) })
	} else {
		for i := range out.Coeffs {
			mulScalarLimb(r.Moduli[i].Q, scalar, a.Coeffs[i], out.Coeffs[i])
		}
	}
	out.IsNTT = a.IsNTT
}

func mulScalarLimb(q, scalar uint64, ai, oi []uint64) {
	s := scalar % q
	w := numth.ShoupPrecomp(s, q)
	for j := range oi {
		oi[j] = numth.MulModShoup(ai[j], s, w, q)
	}
}

// AddScalar adds an integer scalar to the constant coefficient of a
// coefficient-domain polynomial, or to every slot when in NTT domain.
// Aliasing out with a is safe.
func (r *Ring) AddScalar(a *Poly, scalar uint64, out *Poly) {
	for i := range out.Coeffs {
		q := r.Moduli[i].Q
		s := scalar % q
		ai, oi := a.Coeffs[i], out.Coeffs[i]
		if a.IsNTT {
			for j := range oi {
				oi[j] = numth.AddMod(ai[j], s, q)
			}
		} else {
			copy(oi, ai)
			oi[0] = numth.AddMod(ai[0], s, q)
		}
	}
	out.IsNTT = a.IsNTT
}

// sharesLimb reports whether a and out alias each other's backing arrays on
// any common limb. Scatter-style operations (the automorphisms) destroy
// their input when run in place, so they refuse aliased operands.
func sharesLimb(a, out *Poly) bool {
	for i := range out.Coeffs {
		if i >= len(a.Coeffs) {
			break
		}
		if len(a.Coeffs[i]) > 0 && len(out.Coeffs[i]) > 0 && &a.Coeffs[i][0] == &out.Coeffs[i][0] {
			return true
		}
	}
	return false
}

// Automorphism applies the Galois automorphism X -> X^galEl to a
// coefficient-domain polynomial. galEl must be odd (an element of (Z/2NZ)^*).
// out must not alias a: the scatter zeroes out first, so an aliased call
// would destroy the input (this is enforced with a panic).
func (r *Ring) Automorphism(a *Poly, galEl uint64, out *Poly) {
	if a.IsNTT {
		panic("ring: Automorphism requires coefficient-domain input")
	}
	if galEl%2 == 0 {
		panic("ring: Galois element must be odd")
	}
	if sharesLimb(a, out) {
		panic("ring: Automorphism does not support aliased input and output")
	}
	n := uint64(r.N)
	mask := 2*n - 1
	if r.limbsParallel(len(out.Coeffs)) {
		Parallel(len(out.Coeffs), func(i int) { automorphismLimb(r.Moduli[i].Q, n, mask, galEl, a.Coeffs[i], out.Coeffs[i]) })
	} else {
		for i := range out.Coeffs {
			automorphismLimb(r.Moduli[i].Q, n, mask, galEl, a.Coeffs[i], out.Coeffs[i])
		}
	}
	out.IsNTT = false
}

func automorphismLimb(q, n, mask, galEl uint64, ai, oi []uint64) {
	for j := range oi {
		oi[j] = 0
	}
	for j := uint64(0); j < n; j++ {
		idx := (j * galEl) & mask
		c := ai[j]
		if idx < n {
			oi[idx] = c
		} else {
			oi[idx-n] = numth.NegMod(c, q)
		}
	}
}

// automorphismNTTIndex returns (building and caching it on first use) the
// slot permutation realizing X -> X^galEl directly on an NTT-domain
// polynomial: out[j] = in[idx[j]]. Slot j of the bit-reversed negacyclic NTT
// holds the evaluation at psi^(2·brv(j)+1), and the automorphism maps the
// evaluation at zeta to the evaluation at zeta^galEl, so
//
//	idx[j] = brv((galEl·(2·brv(j)+1) mod 2N - 1) / 2).
//
// The permutation does not depend on the prime, so one table serves all limbs.
func (r *Ring) automorphismNTTIndex(galEl uint64) []uint32 {
	r.autoMu.RLock()
	idx, ok := r.autoIdx[galEl]
	r.autoMu.RUnlock()
	if ok {
		return idx
	}
	n := uint64(r.N)
	mask := 2*n - 1
	logN := uint64(r.LogN)
	idx = make([]uint32, n)
	for j := uint64(0); j < n; j++ {
		e := (galEl * (2*numth.BitReverse(j, logN) + 1)) & mask
		idx[j] = uint32(numth.BitReverse((e-1)>>1, logN))
	}
	r.autoMu.Lock()
	r.autoIdx[galEl] = idx
	r.autoMu.Unlock()
	return idx
}

// AutomorphismNTT applies the Galois automorphism X -> X^galEl to an
// NTT-domain polynomial as a pure slot permutation, avoiding the
// InvNTT+NTT round trip of the coefficient-domain path. galEl must be odd.
// out must not alias a (enforced with a panic, as for Automorphism).
func (r *Ring) AutomorphismNTT(a *Poly, galEl uint64, out *Poly) {
	if !a.IsNTT {
		panic("ring: AutomorphismNTT requires NTT-domain input")
	}
	if galEl%2 == 0 {
		panic("ring: Galois element must be odd")
	}
	if sharesLimb(a, out) {
		panic("ring: AutomorphismNTT does not support aliased input and output")
	}
	idx := r.automorphismNTTIndex(galEl)
	if r.limbsParallel(len(out.Coeffs)) {
		Parallel(len(out.Coeffs), func(i int) { permuteLimb(idx, a.Coeffs[i], out.Coeffs[i]) })
	} else {
		for i := range out.Coeffs {
			permuteLimb(idx, a.Coeffs[i], out.Coeffs[i])
		}
	}
	out.IsNTT = true
}

func permuteLimb(idx []uint32, ai, oi []uint64) {
	for j := range oi {
		oi[j] = ai[idx[j]]
	}
}

// AutomorphismNTTSlice applies the NTT-domain automorphism permutation for
// galEl to a single limb: dst[j] = src[idx[j]]. The permutation depends only
// on the ring degree, not on the limb's prime, so this serves limbs over
// moduli outside the chain — in particular the special-prime limbs of a
// hoisted key-switch decomposition. src and dst must not overlap.
func (r *Ring) AutomorphismNTTSlice(galEl uint64, src, dst []uint64) {
	if galEl%2 == 0 {
		panic("ring: Galois element must be odd")
	}
	if len(src) > 0 && len(dst) > 0 && &src[0] == &dst[0] {
		panic("ring: AutomorphismNTTSlice does not support aliased input and output")
	}
	permuteLimb(r.automorphismNTTIndex(galEl), src, dst)
}

// DivideByLastModulus performs RNS rescaling: it interprets p (coefficient
// domain) as an integer polynomial modulo Q = q_0*...*q_L, divides it by the
// last prime q_L with rounding, and returns the result at level L-1. This is
// the core of the CKKS RESCALE and of modulus-switching with scaling. All
// per-limb constants ((q_L mod q_i)^{-1}, q_L/2 mod q_i) are precomputed at
// ring construction.
func (r *Ring) DivideByLastModulus(p *Poly) *Poly {
	if p.IsNTT {
		panic("ring: DivideByLastModulus requires coefficient-domain input")
	}
	level := p.Level()
	if level == 0 {
		panic("ring: cannot rescale below level 0")
	}
	qL := r.Moduli[level].Q
	out := r.NewPoly(level - 1)
	last := p.Coeffs[level]
	half := qL >> 1
	// Every output limb reads only the shared last limb and its own limb, so
	// the limbs divide independently.
	if r.limbsParallel(level) {
		Parallel(level, func(i int) { r.rescaleLimb(p, out, level, i, last, half, qL) })
	} else {
		for i := 0; i <= level-1; i++ {
			r.rescaleLimb(p, out, level, i, last, half, qL)
		}
	}
	out.IsNTT = false
	return out
}

func (r *Ring) rescaleLimb(p, out *Poly, level, i int, last []uint64, half, qL uint64) {
	q := r.Moduli[i].Q
	br := r.Moduli[i].br
	qLInv := r.rescaleInv[level][i]
	qLInvShoup := r.rescaleInvShoup[level][i]
	halfMod := r.rescaleHalf[level][i]
	pi, oi := p.Coeffs[i], out.Coeffs[i]
	for j := range oi {
		// Rounded division: (x - [x]_{qL} + qL/2 correction) * qL^{-1}.
		// Using the representative of the last limb shifted by qL/2
		// implements rounding instead of flooring.
		lastShift := numth.AddMod(last[j], half, qL) // (x mod qL) + qL/2 mod qL
		tmp := numth.SubMod(pi[j], br.ReduceWord(lastShift), q)
		tmp = numth.AddMod(tmp, halfMod, q)
		oi[j] = numth.MulModShoup(tmp, qLInv, qLInvShoup, q)
	}
}

// DropLastModulus removes the last RNS limb of p without scaling the
// underlying plaintext. This realizes the CKKS MODSWITCH operation.
func (r *Ring) DropLastModulus(p *Poly) *Poly {
	level := p.Level()
	if level == 0 {
		panic("ring: cannot drop modulus below level 0")
	}
	out := r.NewPoly(level - 1)
	for i := 0; i <= level-1; i++ {
		copy(out.Coeffs[i], p.Coeffs[i])
	}
	out.IsNTT = p.IsNTT
	return out
}

// ExtendBasisSmall takes the residues `small` of a polynomial modulo srcQ
// (one uint64 per coefficient, values in [0, srcQ)) and reduces the centered
// representative of each residue modulo every modulus of the target ring
// limbs in out. This is the trivial "mod-up" used by RNS key switching where
// the decomposed digit is a single-limb polynomial.
func (r *Ring) ExtendBasisSmall(small []uint64, srcQ uint64, out *Poly) {
	if r.limbsParallel(len(out.Coeffs)) {
		Parallel(len(out.Coeffs), func(i int) { extendLimb(r.Moduli[i], small, srcQ, out.Coeffs[i]) })
	} else {
		for i := range out.Coeffs {
			extendLimb(r.Moduli[i], small, srcQ, out.Coeffs[i])
		}
	}
	out.IsNTT = false
}

func extendLimb(m *Modulus, small []uint64, srcQ uint64, oi []uint64) {
	if m.Q == srcQ {
		copy(oi, small)
		return
	}
	m.ReduceCentered(small, srcQ, oi)
}
