// Package ring implements arithmetic in the cyclotomic quotient rings
// R_q = Z_q[X]/(X^N + 1) used by the RNS-CKKS scheme, with the coefficient
// modulus represented in residue number system (RNS) form as a chain of
// NTT-friendly primes. It provides the negacyclic number-theoretic transform
// (NTT), element-wise ring operations, Galois automorphisms (used for slot
// rotations), and RNS rescaling (division by the last chain prime).
package ring

import (
	"fmt"

	"eva/internal/numth"
)

// Modulus bundles one RNS prime together with the precomputed tables needed
// for the negacyclic NTT of length N modulo that prime.
type Modulus struct {
	Q       uint64   // the prime
	n       int      // transform length
	logN    int      // log2(n)
	psiPows []uint64 // psi^brv(i): powers of the 2N-th root of unity in bit-reversed order
	psiInv  []uint64 // psiInv^brv(i)
	nInv    uint64   // N^{-1} mod Q
}

// NewModulus precomputes the NTT tables for prime q and transform length
// n = 2^logN. q must satisfy q ≡ 1 (mod 2n).
func NewModulus(q uint64, logN int) (*Modulus, error) {
	n := 1 << uint(logN)
	if q%(2*uint64(n)) != 1 {
		return nil, fmt.Errorf("ring: prime %d is not 1 mod 2N for N=%d", q, n)
	}
	psi, err := numth.MinimalPrimitiveNthRoot(2*uint64(n), q)
	if err != nil {
		return nil, fmt.Errorf("ring: finding 2N-th root modulo %d: %w", q, err)
	}
	psiInv := numth.MustInvMod(psi, q)
	m := &Modulus{
		Q:       q,
		n:       n,
		logN:    logN,
		psiPows: make([]uint64, n),
		psiInv:  make([]uint64, n),
		nInv:    numth.MustInvMod(uint64(n), q),
	}
	// Tables in bit-reversed order, as required by the CT/GS butterflies below.
	powsFwd := make([]uint64, n)
	powsInv := make([]uint64, n)
	powsFwd[0], powsInv[0] = 1, 1
	for i := 1; i < n; i++ {
		powsFwd[i] = numth.MulMod(powsFwd[i-1], psi, q)
		powsInv[i] = numth.MulMod(powsInv[i-1], psiInv, q)
	}
	for i := 0; i < n; i++ {
		r := numth.BitReverse(uint64(i), uint64(logN))
		m.psiPows[i] = powsFwd[r]
		m.psiInv[i] = powsInv[r]
	}
	return m, nil
}

// NTT transforms a (length N, coefficient representation, values reduced
// modulo m.Q) into the negacyclic NTT domain in place.
func (m *Modulus) NTT(a []uint64) {
	q := m.Q
	t := m.n
	for mm := 1; mm < m.n; mm <<= 1 {
		t >>= 1
		for i := 0; i < mm; i++ {
			j1 := 2 * i * t
			j2 := j1 + t
			s := m.psiPows[mm+i]
			for j := j1; j < j2; j++ {
				u := a[j]
				v := numth.MulMod(a[j+t], s, q)
				a[j] = numth.AddMod(u, v, q)
				a[j+t] = numth.SubMod(u, v, q)
			}
		}
	}
}

// InvNTT transforms a from the NTT domain back to coefficient representation
// in place.
func (m *Modulus) InvNTT(a []uint64) {
	q := m.Q
	t := 1
	for mm := m.n; mm > 1; mm >>= 1 {
		j1 := 0
		h := mm >> 1
		for i := 0; i < h; i++ {
			j2 := j1 + t
			s := m.psiInv[h+i]
			for j := j1; j < j2; j++ {
				u := a[j]
				v := a[j+t]
				a[j] = numth.AddMod(u, v, q)
				a[j+t] = numth.MulMod(numth.SubMod(u, v, q), s, q)
			}
			j1 += 2 * t
		}
		t <<= 1
	}
	for j := range a {
		a[j] = numth.MulMod(a[j], m.nInv, q)
	}
}

// Ring is the ambient ring R = Z[X]/(X^N+1) with a chain of RNS moduli. A
// polynomial may live at any level L, meaning it carries limbs 0..L of the
// chain (so level 0 means a single prime remains).
type Ring struct {
	N      int
	LogN   int
	Moduli []*Modulus
}

// NewRing builds a Ring of degree 2^logN over the given chain of primes.
// The order of primes is the order in which RESCALE consumes them from the
// end of the slice (i.e. primes[len-1] is dropped first).
func NewRing(logN int, primes []uint64) (*Ring, error) {
	if logN < 2 || logN > 17 {
		return nil, fmt.Errorf("ring: logN %d out of supported range [2,17]", logN)
	}
	if len(primes) == 0 {
		return nil, fmt.Errorf("ring: at least one modulus is required")
	}
	r := &Ring{N: 1 << uint(logN), LogN: logN, Moduli: make([]*Modulus, len(primes))}
	seen := map[uint64]bool{}
	for i, q := range primes {
		if seen[q] {
			return nil, fmt.Errorf("ring: duplicate modulus %d", q)
		}
		seen[q] = true
		m, err := NewModulus(q, logN)
		if err != nil {
			return nil, err
		}
		r.Moduli[i] = m
	}
	return r, nil
}

// MaxLevel is the highest level a polynomial in this ring can have.
func (r *Ring) MaxLevel() int { return len(r.Moduli) - 1 }

// Poly is an RNS polynomial: Coeffs[i][j] is the j-th coefficient modulo the
// i-th chain prime. IsNTT records the current representation.
type Poly struct {
	Coeffs [][]uint64
	IsNTT  bool
}

// NewPoly allocates a zero polynomial at the given level.
func (r *Ring) NewPoly(level int) *Poly {
	if level < 0 || level > r.MaxLevel() {
		panic(fmt.Sprintf("ring: level %d out of range [0,%d]", level, r.MaxLevel()))
	}
	coeffs := make([][]uint64, level+1)
	backing := make([]uint64, (level+1)*r.N)
	for i := range coeffs {
		coeffs[i], backing = backing[:r.N], backing[r.N:]
	}
	return &Poly{Coeffs: coeffs}
}

// Level returns the level (number of limbs minus one) of p.
func (p *Poly) Level() int { return len(p.Coeffs) - 1 }

// CopyNew returns a deep copy of p.
func (p *Poly) CopyNew() *Poly {
	out := &Poly{Coeffs: make([][]uint64, len(p.Coeffs)), IsNTT: p.IsNTT}
	for i := range p.Coeffs {
		out.Coeffs[i] = append([]uint64(nil), p.Coeffs[i]...)
	}
	return out
}

// Copy copies src into p. The levels must match.
func (p *Poly) Copy(src *Poly) {
	if len(p.Coeffs) != len(src.Coeffs) {
		panic("ring: level mismatch in Copy")
	}
	for i := range src.Coeffs {
		copy(p.Coeffs[i], src.Coeffs[i])
	}
	p.IsNTT = src.IsNTT
}

// DropToLevel truncates p to the given (lower or equal) level.
func (p *Poly) DropToLevel(level int) {
	if level+1 > len(p.Coeffs) {
		panic(fmt.Sprintf("ring: cannot raise level from %d to %d", p.Level(), level))
	}
	p.Coeffs = p.Coeffs[:level+1]
}

// Zero sets every coefficient of p to zero.
func (p *Poly) Zero() {
	for i := range p.Coeffs {
		for j := range p.Coeffs[i] {
			p.Coeffs[i][j] = 0
		}
	}
}

// Equal reports whether p and o have the same level, representation flag and
// coefficients.
func (p *Poly) Equal(o *Poly) bool {
	if p.IsNTT != o.IsNTT || len(p.Coeffs) != len(o.Coeffs) {
		return false
	}
	for i := range p.Coeffs {
		for j := range p.Coeffs[i] {
			if p.Coeffs[i][j] != o.Coeffs[i][j] {
				return false
			}
		}
	}
	return true
}

// NTT converts p to the NTT domain in place (no-op if already there).
func (r *Ring) NTT(p *Poly) {
	if p.IsNTT {
		return
	}
	for i := range p.Coeffs {
		r.Moduli[i].NTT(p.Coeffs[i])
	}
	p.IsNTT = true
}

// InvNTT converts p to coefficient representation in place.
func (r *Ring) InvNTT(p *Poly) {
	if !p.IsNTT {
		return
	}
	for i := range p.Coeffs {
		r.Moduli[i].InvNTT(p.Coeffs[i])
	}
	p.IsNTT = false
}

func sameShape(a, b, out *Poly) int {
	l := len(a.Coeffs)
	if len(b.Coeffs) < l {
		l = len(b.Coeffs)
	}
	if len(out.Coeffs) < l {
		l = len(out.Coeffs)
	}
	return l
}

// Add sets out = a + b limb-wise (down to the smallest common level).
func (r *Ring) Add(a, b, out *Poly) {
	l := sameShape(a, b, out)
	for i := 0; i < l; i++ {
		q := r.Moduli[i].Q
		ai, bi, oi := a.Coeffs[i], b.Coeffs[i], out.Coeffs[i]
		for j := range oi {
			oi[j] = numth.AddMod(ai[j], bi[j], q)
		}
	}
	out.IsNTT = a.IsNTT
}

// Sub sets out = a - b limb-wise.
func (r *Ring) Sub(a, b, out *Poly) {
	l := sameShape(a, b, out)
	for i := 0; i < l; i++ {
		q := r.Moduli[i].Q
		ai, bi, oi := a.Coeffs[i], b.Coeffs[i], out.Coeffs[i]
		for j := range oi {
			oi[j] = numth.SubMod(ai[j], bi[j], q)
		}
	}
	out.IsNTT = a.IsNTT
}

// Neg sets out = -a limb-wise.
func (r *Ring) Neg(a, out *Poly) {
	for i := range out.Coeffs {
		q := r.Moduli[i].Q
		ai, oi := a.Coeffs[i], out.Coeffs[i]
		for j := range oi {
			oi[j] = numth.NegMod(ai[j], q)
		}
	}
	out.IsNTT = a.IsNTT
}

// MulCoeffs sets out = a * b element-wise. Both operands must be in the NTT
// domain, in which case this realizes negacyclic polynomial multiplication.
func (r *Ring) MulCoeffs(a, b, out *Poly) {
	if !a.IsNTT || !b.IsNTT {
		panic("ring: MulCoeffs requires NTT-domain operands")
	}
	l := sameShape(a, b, out)
	for i := 0; i < l; i++ {
		q := r.Moduli[i].Q
		ai, bi, oi := a.Coeffs[i], b.Coeffs[i], out.Coeffs[i]
		for j := range oi {
			oi[j] = numth.MulMod(ai[j], bi[j], q)
		}
	}
	out.IsNTT = true
}

// MulCoeffsAndAdd sets out += a * b element-wise (NTT domain).
func (r *Ring) MulCoeffsAndAdd(a, b, out *Poly) {
	if !a.IsNTT || !b.IsNTT {
		panic("ring: MulCoeffsAndAdd requires NTT-domain operands")
	}
	l := sameShape(a, b, out)
	for i := 0; i < l; i++ {
		q := r.Moduli[i].Q
		ai, bi, oi := a.Coeffs[i], b.Coeffs[i], out.Coeffs[i]
		for j := range oi {
			oi[j] = numth.AddMod(oi[j], numth.MulMod(ai[j], bi[j], q), q)
		}
	}
	out.IsNTT = true
}

// MulScalar sets out = a * scalar, where scalar is reduced modulo each limb.
func (r *Ring) MulScalar(a *Poly, scalar uint64, out *Poly) {
	for i := range out.Coeffs {
		q := r.Moduli[i].Q
		s := scalar % q
		ai, oi := a.Coeffs[i], out.Coeffs[i]
		for j := range oi {
			oi[j] = numth.MulMod(ai[j], s, q)
		}
	}
	out.IsNTT = a.IsNTT
}

// AddScalar adds an integer scalar to the constant coefficient of a
// coefficient-domain polynomial, or to every slot when in NTT domain.
func (r *Ring) AddScalar(a *Poly, scalar uint64, out *Poly) {
	for i := range out.Coeffs {
		q := r.Moduli[i].Q
		s := scalar % q
		ai, oi := a.Coeffs[i], out.Coeffs[i]
		if a.IsNTT {
			for j := range oi {
				oi[j] = numth.AddMod(ai[j], s, q)
			}
		} else {
			copy(oi, ai)
			oi[0] = numth.AddMod(ai[0], s, q)
		}
	}
	out.IsNTT = a.IsNTT
}

// Automorphism applies the Galois automorphism X -> X^galEl to a
// coefficient-domain polynomial. galEl must be odd (an element of (Z/2NZ)^*).
func (r *Ring) Automorphism(a *Poly, galEl uint64, out *Poly) {
	if a.IsNTT {
		panic("ring: Automorphism requires coefficient-domain input")
	}
	if galEl%2 == 0 {
		panic("ring: Galois element must be odd")
	}
	n := uint64(r.N)
	mask := 2*n - 1
	for i := range out.Coeffs {
		q := r.Moduli[i].Q
		ai, oi := a.Coeffs[i], out.Coeffs[i]
		for j := range oi {
			oi[j] = 0
		}
		for j := uint64(0); j < n; j++ {
			idx := (j * galEl) & mask
			c := ai[j]
			if idx < n {
				oi[idx] = c
			} else {
				oi[idx-n] = numth.NegMod(c, q)
			}
		}
	}
	out.IsNTT = false
}

// DivideByLastModulus performs RNS rescaling: it interprets p (coefficient
// domain) as an integer polynomial modulo Q = q_0*...*q_L, divides it by the
// last prime q_L with rounding, and returns the result at level L-1. This is
// the core of the CKKS RESCALE and of modulus-switching with scaling.
func (r *Ring) DivideByLastModulus(p *Poly) *Poly {
	if p.IsNTT {
		panic("ring: DivideByLastModulus requires coefficient-domain input")
	}
	level := p.Level()
	if level == 0 {
		panic("ring: cannot rescale below level 0")
	}
	qL := r.Moduli[level].Q
	out := r.NewPoly(level - 1)
	last := p.Coeffs[level]
	half := qL >> 1
	for i := 0; i <= level-1; i++ {
		q := r.Moduli[i].Q
		qLInv := numth.MustInvMod(qL%q, q)
		halfMod := half % q
		pi, oi := p.Coeffs[i], out.Coeffs[i]
		for j := range oi {
			// Rounded division: (x - [x]_{qL} + qL/2 correction) * qL^{-1}.
			// Using the representative of the last limb shifted by qL/2
			// implements rounding instead of flooring.
			lastShift := numth.AddMod(last[j], half, qL) // (x mod qL) + qL/2 mod qL
			tmp := numth.SubMod(pi[j], lastShift%q, q)
			tmp = numth.AddMod(tmp, halfMod, q)
			oi[j] = numth.MulMod(tmp, qLInv, q)
		}
	}
	out.IsNTT = false
	return out
}

// DropLastModulus removes the last RNS limb of p without scaling the
// underlying plaintext. This realizes the CKKS MODSWITCH operation.
func (r *Ring) DropLastModulus(p *Poly) *Poly {
	level := p.Level()
	if level == 0 {
		panic("ring: cannot drop modulus below level 0")
	}
	out := r.NewPoly(level - 1)
	for i := 0; i <= level-1; i++ {
		copy(out.Coeffs[i], p.Coeffs[i])
	}
	out.IsNTT = p.IsNTT
	return out
}

// ExtendBasisSmall takes the residues `small` of a polynomial modulo srcQ
// (one uint64 per coefficient, values in [0, srcQ)) and reduces the centered
// representative of each residue modulo every modulus of the target ring
// limbs in out. This is the trivial "mod-up" used by RNS key switching where
// the decomposed digit is a single-limb polynomial.
func (r *Ring) ExtendBasisSmall(small []uint64, srcQ uint64, out *Poly) {
	for i := range out.Coeffs {
		q := r.Moduli[i].Q
		oi := out.Coeffs[i]
		if q == srcQ {
			copy(oi, small)
			continue
		}
		srcModQ := srcQ % q
		for j := range oi {
			v := small[j]
			if v > srcQ/2 {
				// centered lift: v - srcQ (negative), reduced mod q
				oi[j] = numth.SubMod(v%q, srcModQ, q)
			} else {
				oi[j] = v % q
			}
		}
	}
	out.IsNTT = false
}
