package ring

import (
	"testing"

	"eva/internal/numth"
)

func benchRing(b *testing.B, logN, limbs int) *Ring {
	b.Helper()
	primes, err := numth.GenerateNTTPrimes(55, logN, limbs, nil)
	if err != nil {
		b.Fatal(err)
	}
	r, err := NewRing(logN, primes)
	if err != nil {
		b.Fatal(err)
	}
	return r
}

func benchPoly(r *Ring, level int) *Poly {
	p := r.NewPoly(level)
	for i := range p.Coeffs {
		q := r.Moduli[i].Q
		for j := range p.Coeffs[i] {
			p.Coeffs[i][j] = (uint64(j)*2862933555777941757 + 3037000493) % q
		}
	}
	return p
}

func BenchmarkNTTForward(b *testing.B) {
	for _, logN := range []int{12, 13, 14} {
		r := benchRing(b, logN, 1)
		p := benchPoly(r, 0)
		b.Run(sizeName(logN), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r.Moduli[0].NTT(p.Coeffs[0])
			}
		})
	}
}

// BenchmarkNTTReference measures the retained Div64-based oracle transform,
// so the speedup of the Shoup/lazy-reduction fast path stays visible in every
// benchmark run instead of living only in this PR's description.
func BenchmarkNTTReference(b *testing.B) {
	for _, logN := range []int{12} {
		r := benchRing(b, logN, 1)
		p := benchPoly(r, 0)
		b.Run(sizeName(logN), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r.Moduli[0].nttReference(p.Coeffs[0])
			}
		})
	}
}

func BenchmarkNTTInverse(b *testing.B) {
	for _, logN := range []int{12, 13, 14} {
		r := benchRing(b, logN, 1)
		p := benchPoly(r, 0)
		b.Run(sizeName(logN), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r.Moduli[0].InvNTT(p.Coeffs[0])
			}
		})
	}
}

func BenchmarkMulCoeffs(b *testing.B) {
	r := benchRing(b, 13, 4)
	x := benchPoly(r, 3)
	y := benchPoly(r, 3)
	x.IsNTT, y.IsNTT = true, true
	out := r.NewPoly(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.MulCoeffs(x, y, out)
	}
}

func BenchmarkDivideByLastModulus(b *testing.B) {
	r := benchRing(b, 13, 4)
	x := benchPoly(r, 3)
	b.ReportAllocs() // regression guard: only the output poly may allocate
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.DivideByLastModulus(x)
	}
}

func BenchmarkAutomorphism(b *testing.B) {
	r := benchRing(b, 13, 4)
	x := benchPoly(r, 3)
	out := r.NewPoly(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Automorphism(x, 5, out)
	}
}

// BenchmarkAutomorphismNTT measures the NTT-domain slot permutation that
// replaces the InvNTT+Automorphism+NTT round trip on the rotation path.
func BenchmarkAutomorphismNTT(b *testing.B) {
	r := benchRing(b, 13, 4)
	x := benchPoly(r, 3)
	x.IsNTT = true
	out := r.NewPoly(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.AutomorphismNTT(x, 5, out)
	}
}

func sizeName(logN int) string {
	return map[int]string{12: "N=4096", 13: "N=8192", 14: "N=16384"}[logN]
}
