// Package chet models the CHET baseline the paper compares against
// (Section 8.2). CHET compiles the same tensor kernels as EVA but differs in
// exactly the two ways the paper attributes EVA's speedup to:
//
//  1. FHE-specific instructions are inserted locally, per kernel, by the
//     expert-written kernel library: every kernel keeps its ciphertexts at a
//     fixed working scale equal to the maximum rescale prime and
//     unconditionally rescales after each multiplication, because a kernel
//     compiled in isolation cannot know the scales other kernels produce.
//     Modulus switching is likewise inserted lazily, right before the
//     instruction that needs it. This yields one 60-bit chain prime per
//     multiplicative level and therefore larger encryption parameters than
//     EVA's global waterline analysis (Table 6).
//
//  2. Execution is bulk-synchronous per kernel (the OpenMP-style static
//     schedule), so parallelism is limited to what is available inside a
//     single kernel (Figure 7).
//
// Everything else — the kernels themselves, parameter selection, rotation-key
// selection, and the CKKS backend — is shared with EVA, which keeps the
// comparison apples-to-apples.
package chet

import (
	"eva/internal/compile"
	"eva/internal/core"
	"eva/internal/execute"
	"eva/internal/rewrite"
)

// WorkingScaleLog is the uniform log2 working scale CHET's kernel library
// maintains for every ciphertext and plaintext operand.
const WorkingScaleLog = 60

// PrepareProgram clones the input program and normalizes every input and
// constant to CHET's uniform working scale (CHET does not track fine-grained
// per-value scales the way EVA does).
func PrepareProgram(p *core.Program) *core.Program {
	q := p.Clone()
	for _, t := range q.Terms() {
		if t.Op == core.OpInput || t.Op == core.OpConstant {
			t.LogScale = WorkingScaleLog
		}
	}
	for _, o := range q.Outputs() {
		if o.LogScale > WorkingScaleLog {
			o.LogScale = WorkingScaleLog
		}
	}
	return q
}

// Compile compiles a program the way the CHET baseline does: uniform working
// scale, a rescale by the maximum prime after every ciphertext
// multiplication, and lazy modulus switching. The remaining options (security
// level, ring-degree floor) are taken from opts.
func Compile(p *core.Program, opts compile.Options) (*compile.Result, error) {
	prepared := PrepareProgram(p)
	opts.Rescale = rewrite.RescaleFixedMax
	opts.ModSwitch = rewrite.ModSwitchLazy
	if opts.MaxRescaleLog <= 0 {
		opts.MaxRescaleLog = WorkingScaleLog
	}
	return compile.Compile(prepared, opts)
}

// RunOptions returns the executor configuration matching CHET's
// bulk-synchronous per-kernel parallelization.
func RunOptions(workers int) execute.RunOptions {
	return execute.RunOptions{Workers: workers, Scheduler: execute.SchedulerBulkSynchronous}
}
