package chet

import (
	"testing"

	"eva/internal/compile"
	"eva/internal/core"
	"eva/internal/execute"
)

func buildProgram(t *testing.T) *core.Program {
	t.Helper()
	p := core.MustNewProgram("p", 8)
	x, _ := p.NewInput("x", core.TypeCipher, 8, 25)
	w, _ := p.NewConstant([]float64{1, 2, 3, 4, 5, 6, 7, 8}, 15)
	xw, _ := p.NewBinary(core.OpMultiply, x, w)
	sq, _ := p.NewBinary(core.OpMultiply, xw, xw)
	if err := p.AddOutput("out", sq, 30); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPrepareProgramNormalizesScales(t *testing.T) {
	p := buildProgram(t)
	q := PrepareProgram(p)
	// The original is untouched.
	if p.InputByName("x").LogScale != 25 {
		t.Error("PrepareProgram mutated the original program")
	}
	for _, term := range q.Terms() {
		if term.Op == core.OpInput || term.Op == core.OpConstant {
			if term.LogScale != WorkingScaleLog {
				t.Errorf("leaf %s scale 2^%g, want 2^%d", term, term.LogScale, WorkingScaleLog)
			}
		}
	}
	if q.Outputs()[0].LogScale > WorkingScaleLog {
		t.Error("output scale not clamped to the working scale")
	}
}

func TestCompileUsesPerKernelInsertion(t *testing.T) {
	p := buildProgram(t)
	opts := compile.DefaultOptions()
	opts.AllowInsecure = true
	res, err := Compile(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	// CHET rescales after every ciphertext multiplication: two multiplies,
	// two rescales, all by the maximum prime.
	if got := res.CompiledStats.Instructions["RESCALE"]; got != 2 {
		t.Errorf("RESCALE count = %d, want 2", got)
	}
	for _, term := range res.Program.TopoSort() {
		if term.Op == core.OpRescale && term.LogScale != WorkingScaleLog {
			t.Errorf("rescale divisor 2^%g, want 2^%d", term.LogScale, WorkingScaleLog)
		}
	}
	// The EVA pipeline on the same program needs fewer chain primes.
	evaRes, err := compile.Compile(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if evaRes.Plan.NumPrimes() > res.Plan.NumPrimes() {
		t.Errorf("EVA selected more primes (%d) than the CHET baseline (%d)",
			evaRes.Plan.NumPrimes(), res.Plan.NumPrimes())
	}
}

func TestCompileDefaultsMaxRescale(t *testing.T) {
	p := buildProgram(t)
	res, err := Compile(p, compile.Options{AllowInsecure: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Options.MaxRescaleLog != WorkingScaleLog {
		t.Errorf("MaxRescaleLog defaulted to %g, want %d", res.Options.MaxRescaleLog, WorkingScaleLog)
	}
}

func TestRunOptions(t *testing.T) {
	ro := RunOptions(7)
	if ro.Workers != 7 || ro.Scheduler != execute.SchedulerBulkSynchronous {
		t.Errorf("RunOptions = %+v", ro)
	}
}
