package profile_test

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"time"

	"eva/internal/builder"
	"eva/internal/ckks"
	"eva/internal/compile"
	"eva/internal/core"
	"eva/internal/execute"
	"eva/internal/hetensor"
	"eva/internal/obs"
	"eva/internal/profile"
	"eva/internal/rewrite"
	"eva/internal/store"
)

// buildDeepChain compiles x^8 over a 32-slot vector: a maximally level-
// consuming multiply/relinearize/rescale chain with no rotations.
func buildDeepChain(tb testing.TB) *compile.Result {
	tb.Helper()
	b := builder.New("deep", 32)
	x := b.Input("x", 30)
	b.Output("y", x.Pow(8), 30)
	p, err := b.Program()
	if err != nil {
		tb.Fatal(err)
	}
	res, err := compile.Compile(p, compile.Options{AllowInsecure: true})
	if err != nil {
		tb.Fatal(err)
	}
	return res
}

// buildMatmul compiles a dim x dim diagonal-method matmul: rotation-heavy
// (hoisted) with ct-pt multiplies, the complement of the deep chain.
func buildMatmul(tb testing.TB, vecSize, dim int) *compile.Result {
	tb.Helper()
	rng := rand.New(rand.NewSource(42))
	b := builder.New("matmul", vecSize)
	tc := hetensor.NewCompiler(b, 25, 20)
	w := make([][]float64, dim)
	for i := range w {
		w[i] = make([]float64, dim)
		for j := range w[i] {
			w[i][j] = rng.Float64()*2 - 1
		}
	}
	x := &hetensor.Vector{Value: b.InputWithWidth("x", dim, 30), Length: dim}
	out, err := tc.Matmul("mm", x, w, nil)
	if err != nil {
		tb.Fatal(err)
	}
	b.Output("y", out.Value, 30)
	p, err := b.Program()
	if err != nil {
		tb.Fatal(err)
	}
	res, err := compile.Compile(p, compile.Options{AllowInsecure: true})
	if err != nil {
		tb.Fatal(err)
	}
	return res
}

func randomInputs(res *compile.Result, seed int64) execute.Inputs {
	rng := rand.New(rand.NewSource(seed))
	in := execute.Inputs{}
	for _, t := range res.Program.Inputs() {
		v := make([]float64, t.VecWidth)
		for i := range v {
			v[i] = rng.Float64()*2 - 1
		}
		in[t.Name] = v
	}
	return in
}

// runProfiled executes res once on the CKKS backend with a recorder wired in.
func runProfiled(tb testing.TB, c *profile.Collector, programID string, res *compile.Result, traceID string, seed uint64) *execute.Outputs {
	tb.Helper()
	prng := ckks.NewTestPRNG(seed)
	ctx, keys, err := execute.NewContext(res, prng)
	if err != nil {
		tb.Fatal(err)
	}
	enc, err := execute.EncryptInputs(ctx, res, keys, randomInputs(res, int64(seed)), prng)
	if err != nil {
		tb.Fatal(err)
	}
	rec := c.Recorder(programID, res, traceID)
	out, err := execute.Run(ctx, res, enc, execute.RunOptions{
		Scheduler:     execute.SchedulerSequential,
		OnInstruction: rec.OnInstruction,
	})
	if err != nil {
		tb.Fatal(err)
	}
	rec.Finish()
	return out
}

// TestRecorderSamplesRealExecution runs a deep chain at sample rate 1 and
// checks that every instruction was sampled, that real executions produce no
// level or scale drift (the compiler's invariants hold at runtime), and that
// the report aggregates are coherent.
func TestRecorderSamplesRealExecution(t *testing.T) {
	res := buildDeepChain(t)
	c := profile.NewCollector(profile.Config{SampleRate: 1})
	runProfiled(t, c, "deep", res, "", 7)

	total := uint64(len(res.Program.TopoSort()))
	rep := c.Report()
	if !rep.Enabled {
		t.Fatal("report not enabled")
	}
	if rep.Executions != 1 || rep.Instructions != total || rep.Samples != total {
		t.Fatalf("report counts = %d exec / %d instr / %d samples, want 1 / %d / %d",
			rep.Executions, rep.Instructions, rep.Samples, total, total)
	}
	if len(rep.DriftCounts) != 0 {
		t.Fatalf("real execution produced drift: %v (events %v)", rep.DriftCounts, rep.Drift)
	}
	if len(rep.Buckets) == 0 {
		t.Fatal("no buckets aggregated")
	}
	if rep.NsPerUnit <= 0 {
		t.Fatalf("ns-per-unit ratio %v, want > 0", rep.NsPerUnit)
	}
	var bucketCount uint64
	seenOps := map[string]bool{}
	for _, b := range rep.Buckets {
		bucketCount += b.Count
		seenOps[b.Op] = true
		if b.Count > 0 && b.MeanUS < 0 {
			t.Fatalf("bucket %v has negative mean", b)
		}
	}
	if bucketCount != total {
		t.Fatalf("bucket counts sum to %d, want %d", bucketCount, total)
	}
	if !seenOps[core.OpMultiply.String()] || !seenOps[core.OpRescale.String()] {
		t.Fatalf("expected multiply and rescale buckets, got ops %v", seenOps)
	}
	if len(rep.Programs) != 1 || rep.Programs[0].ProgramID != "deep" || rep.Programs[0].Samples != total {
		t.Fatalf("program summary %+v, want deep with %d samples", rep.Programs, total)
	}
}

// TestSamplingStride checks that sample rate N records exactly every Nth
// instruction (indices 0, N, 2N, ...).
func TestSamplingStride(t *testing.T) {
	res := buildDeepChain(t)
	c := profile.NewCollector(profile.Config{SampleRate: 4})
	runProfiled(t, c, "deep", res, "", 7)
	total := uint64(len(res.Program.TopoSort()))
	want := (total + 3) / 4
	rep := c.Report()
	if rep.Instructions != total || rep.Samples != want {
		t.Fatalf("rate-4 run: %d instructions / %d samples, want %d / %d",
			rep.Instructions, rep.Samples, total, want)
	}
}

// TestCollectorDisabled checks the disabled path: nil recorders that are safe
// to call and a report that says so.
func TestCollectorDisabled(t *testing.T) {
	res := buildDeepChain(t)
	c := profile.NewCollector(profile.Config{SampleRate: -1})
	if c.Enabled() {
		t.Fatal("SampleRate -1 collector reports enabled")
	}
	rec := c.Recorder("deep", res, "")
	if rec != nil {
		t.Fatal("disabled collector returned a recorder")
	}
	rec.OnInstruction(res.Program.TopoSort()[0], execute.InstrRecord{}) // must not panic
	rec.Finish()
	if rep := c.Report(); rep.Enabled || rep.Samples != 0 {
		t.Fatalf("disabled report = %+v", rep)
	}
}

// TestDriftDetection feeds fabricated instruction records that violate the
// compiler's level, scale, and cost expectations and checks each is flagged
// with the right kind and carries the trace id (the /traces exemplar link).
func TestDriftDetection(t *testing.T) {
	res := buildDeepChain(t)
	maxLevel := len(res.Plan.BitSizes) - 1
	levels := rewrite.Levels(res.Program)
	var mul *core.Term
	for _, term := range res.Program.TopoSort() {
		if term.Op == core.OpMultiply && res.Types[term] == core.TypeCipher {
			mul = term
			break
		}
	}
	if mul == nil {
		t.Fatal("no cipher multiply in deep chain")
	}
	expLevel := maxLevel - levels[mul]
	okScale := math.Exp2(res.Scales[mul])
	base := execute.InstrRecord{Wall: time.Millisecond, Cipher: true, Level: expLevel, Scale: okScale, OutBytes: 4096, Operands: 2}

	c := profile.NewCollector(profile.Config{SampleRate: 1})
	rec := c.Recorder("deep", res, "trace-abc")
	good := base
	rec.OnInstruction(mul, good)
	wrongLevel := base
	wrongLevel.Level = expLevel - 1
	rec.OnInstruction(mul, wrongLevel)
	wrongScale := base
	wrongScale.Scale = okScale * 8 // 3 bits off, tolerance is 0.5
	rec.OnInstruction(mul, wrongScale)
	rec.Finish()

	rep := c.Report()
	if rep.DriftCounts[profile.DriftKindLevel] != 1 || rep.DriftCounts[profile.DriftKindScale] != 1 {
		t.Fatalf("drift counts %v, want one level and one scale", rep.DriftCounts)
	}
	for _, ev := range rep.Drift {
		if ev.TraceID != "trace-abc" {
			t.Fatalf("drift event missing trace id: %+v", ev)
		}
		if ev.Program != "deep" || ev.Op != core.OpMultiply.String() {
			t.Fatalf("drift event mislabeled: %+v", ev)
		}
	}

	// Cost drift needs a prediction source; install a calibration that
	// predicts near-zero time so the 1ms sample is a >= 8x outlier.
	c2 := profile.NewCollector(profile.Config{SampleRate: 1})
	c2.SetCalibration(&profile.Calibration{
		NsPerUnit:         map[string]float64{core.OpMultiply.String(): 1e-6},
		BaselineNsPerUnit: 1e-6,
	})
	rec2 := c2.Recorder("deep", res, "trace-def")
	rec2.OnInstruction(mul, base)
	rec2.Finish()
	rep2 := c2.Report()
	if rep2.DriftCounts[profile.DriftKindCost] != 1 {
		t.Fatalf("cost drift counts %v, want one cost event", rep2.DriftCounts)
	}
	if len(rep2.Drift) != 1 || rep2.Drift[0].TraceID != "trace-def" || rep2.Drift[0].Kind != profile.DriftKindCost {
		t.Fatalf("cost drift event %+v", rep2.Drift)
	}
}

// TestPipelineHeadroomSkipsExpectations: with ExtraLevels the absolute entry
// level is unknowable at compile time, so level/scale checks must not fire.
func TestPipelineHeadroomSkipsExpectations(t *testing.T) {
	b := builder.New("pad", 32)
	x := b.Input("x", 30)
	b.Output("y", x.Square(), 30)
	p, err := b.Program()
	if err != nil {
		t.Fatal(err)
	}
	res, err := compile.Compile(p, compile.Options{AllowInsecure: true, ExtraLevels: 2})
	if err != nil {
		t.Fatal(err)
	}
	c := profile.NewCollector(profile.Config{SampleRate: 1})
	runProfiled(t, c, "pad", res, "", 3)
	rep := c.Report()
	if rep.DriftCounts[profile.DriftKindLevel] != 0 || rep.DriftCounts[profile.DriftKindScale] != 0 {
		t.Fatalf("pipeline-padded run produced expectation drift: %v", rep.DriftCounts)
	}
	if rep.Samples == 0 {
		t.Fatal("padded run sampled nothing")
	}
}

// TestPersistenceAccumulates runs the same program in two collector
// "processes" sharing one store and checks the persisted profile accumulates
// across them (the repeated-runs-accumulate property).
func TestPersistenceAccumulates(t *testing.T) {
	res := buildDeepChain(t)
	st := store.NewMemory()
	defer st.Close()
	total := uint64(len(res.Program.TopoSort()))

	c1 := profile.NewCollector(profile.Config{SampleRate: 1, Store: st})
	runProfiled(t, c1, "deep", res, "", 7)
	c1.Flush()
	c2 := profile.NewCollector(profile.Config{SampleRate: 1, Store: st})
	runProfiled(t, c2, "deep", res, "", 8)
	runProfiled(t, c2, "deep", res, "", 9)
	c2.Flush()

	profiles, err := profile.LoadProfiles(st)
	if err != nil {
		t.Fatal(err)
	}
	if len(profiles) != 1 {
		t.Fatalf("got %d profiles, want 1", len(profiles))
	}
	p := profiles[0]
	if p.ProgramID != "deep" || p.Executions != 3 || p.Samples != 3*total {
		t.Fatalf("accumulated profile = %s with %d executions / %d samples, want deep with 3 / %d",
			p.ProgramID, p.Executions, p.Samples, 3*total)
	}
	var count uint64
	for _, b := range p.Buckets {
		count += b.Count
	}
	if count != 3*total {
		t.Fatalf("accumulated bucket counts sum to %d, want %d", count, 3*total)
	}
}

// TestMergeReports checks the cluster merge: counters and per-bucket counts
// sum across nodes with no double-counting.
func TestMergeReports(t *testing.T) {
	res := buildDeepChain(t)
	ca := profile.NewCollector(profile.Config{SampleRate: 1, Node: "a"})
	cb := profile.NewCollector(profile.Config{SampleRate: 1, Node: "b"})
	runProfiled(t, ca, "deep", res, "", 7)
	runProfiled(t, cb, "deep", res, "", 8)
	runProfiled(t, cb, "deep", res, "", 9)
	ra, rb := ca.Report(), cb.Report()

	merged := profile.MergeReports("cluster", []profile.Report{ra, rb})
	if merged.Samples != ra.Samples+rb.Samples {
		t.Fatalf("merged samples %d, want %d", merged.Samples, ra.Samples+rb.Samples)
	}
	if merged.Executions != 3 {
		t.Fatalf("merged executions %d, want 3", merged.Executions)
	}
	sum := func(rep profile.Report) map[profile.BucketKey]uint64 {
		m := map[profile.BucketKey]uint64{}
		for _, b := range rep.Buckets {
			m[profile.BucketKey{Op: b.Op, Level: b.Level, Hoisted: b.Hoisted}] += b.Count
		}
		return m
	}
	want := sum(ra)
	for k, v := range sum(rb) {
		want[k] += v
	}
	got := sum(merged)
	if len(got) != len(want) {
		t.Fatalf("merged bucket keys = %d, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("merged bucket %v count %d, want %d", k, got[k], v)
		}
	}
	if len(merged.Programs) != 1 || merged.Programs[0].Samples != merged.Samples {
		t.Fatalf("merged program summaries %+v", merged.Programs)
	}
}

// TestWriteProm renders the profiler families and feeds them back through
// the strict exposition parser.
func TestWriteProm(t *testing.T) {
	res := buildDeepChain(t)
	c := profile.NewCollector(profile.Config{SampleRate: 1})
	c.SetCalibration(&profile.Calibration{NsPerUnit: map[string]float64{"mul": 5}, BaselineNsPerUnit: 3})
	runProfiled(t, c, "deep", res, "", 7)

	var buf bytes.Buffer
	pw := obs.NewPromWriter(&buf)
	c.WriteProm(pw)
	if err := pw.Err(); err != nil {
		t.Fatal(err)
	}
	fams, err := obs.ParseExposition(buf.Bytes())
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, buf.String())
	}
	for _, name := range []string{
		"eva_profile_executions_total", "eva_profile_samples_total",
		"eva_profile_drift_total", "eva_profile_op_duration_seconds",
		"eva_profile_op_result_bytes", "eva_profile_calibration_ns_per_unit",
	} {
		if fams[name] == nil {
			t.Errorf("family %s missing from exposition", name)
		}
	}
}
