package profile_test

import (
	"testing"

	"eva/internal/ckks"
	"eva/internal/execute"
	"eva/internal/profile"
)

// benchmarkProfiledExecute measures end-to-end execution of the hetensor
// matmul workload with and without a recorder attached. The CI regression
// gate tracks both; the acceptance bar is <= 5% overhead at the default
// sampling rate (the always-on path must stay within noise).
func benchmarkProfiledExecute(b *testing.B, c *profile.Collector) {
	res := buildMatmul(b, 64, 8)
	prng := ckks.NewTestPRNG(3)
	ctx, keys, err := execute.NewContext(res, prng)
	if err != nil {
		b.Fatal(err)
	}
	enc, err := execute.EncryptInputs(ctx, res, keys, randomInputs(res, 3), prng)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opts := execute.RunOptions{Scheduler: execute.SchedulerSequential}
		var rec *profile.Recorder
		if c != nil {
			rec = c.Recorder("bench", res, "")
			opts.OnInstruction = rec.OnInstruction
		}
		if _, err := execute.Run(ctx, res, enc, opts); err != nil {
			b.Fatal(err)
		}
		rec.Finish()
	}
}

func BenchmarkProfiledExecuteOff(b *testing.B) {
	benchmarkProfiledExecute(b, nil)
}

func BenchmarkProfiledExecuteOn(b *testing.B) {
	benchmarkProfiledExecute(b, profile.NewCollector(profile.Config{}))
}
