package profile

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"eva/internal/store"
)

// Store kinds and ids used by the profiler. Profiles are keyed by the
// content-addressed program id (so repeated runs of one program accumulate);
// the fitted calibration is a singleton.
const (
	KindProfile     = "profile"
	KindCalibration = "calibration"
	CalibrationID   = "default"
)

// Calibration is a fitted coefficient set mapping the analysis.CostModel's
// abstract "limb-element operation" units to measured nanoseconds, per
// opcode. It is what `evaserve -calibrate` emits and what the server loads at
// startup so admission estimates and drift checks run on measured numbers.
type Calibration struct {
	// NsPerUnit maps each opcode to its fitted nanoseconds per cost unit.
	NsPerUnit map[string]float64 `json:"ns_per_unit"`
	// BaselineNsPerUnit is the single global ratio (total ns over total
	// units) — the best possible one-coefficient scaling of the uncalibrated
	// model, used for opcodes with no per-op fit.
	BaselineNsPerUnit float64 `json:"baseline_ns_per_unit"`
	// Samples and Programs describe the fit's input population.
	Samples  uint64 `json:"samples"`
	Programs int    `json:"programs,omitempty"`
	FittedAt string `json:"fitted_at,omitempty"`
}

// PredictNs returns the calibrated wall-time prediction in nanoseconds for an
// instruction costing the given model units.
func (cal *Calibration) PredictNs(op string, units float64) float64 {
	if cal == nil || units <= 0 {
		return 0
	}
	if c, ok := cal.NsPerUnit[op]; ok && c > 0 {
		return c * units
	}
	return cal.BaselineNsPerUnit * units
}

// ErrNoSamples reports a calibration fit over profiles with no eligible
// (cipher, non-hoisted) compute samples.
var ErrNoSamples = errors.New("profile: no eligible samples to fit")

// Fit computes per-opcode cost coefficients from accumulated profiles as the
// ratio of summed measured nanoseconds to summed predicted units — the
// least-squares slope through the origin under per-sample unit weighting.
// Hoisted buckets are excluded (the first batch member absorbs the whole
// batch's key-switch work), as are buckets with no model units (leaves and
// plain results, which the model prices at zero).
func Fit(profiles []ProgramProfile) (*Calibration, error) {
	type sums struct{ ns, units float64 }
	perOp := map[string]*sums{}
	var totalNs, totalUnits float64
	var samples uint64
	for i := range profiles {
		for j := range profiles[i].Buckets {
			b := &profiles[i].Buckets[j]
			if b.Hoisted || b.Units <= 0 || b.Count == 0 {
				continue
			}
			s := perOp[b.Op]
			if s == nil {
				s = &sums{}
				perOp[b.Op] = s
			}
			s.ns += b.TotalNS
			s.units += b.Units
			totalNs += b.TotalNS
			totalUnits += b.Units
			samples += b.Count
		}
	}
	if totalUnits <= 0 || samples == 0 {
		return nil, ErrNoSamples
	}
	cal := &Calibration{
		NsPerUnit:         make(map[string]float64, len(perOp)),
		BaselineNsPerUnit: totalNs / totalUnits,
		Samples:           samples,
		Programs:          len(profiles),
		FittedAt:          time.Now().UTC().Format(time.RFC3339),
	}
	for op, s := range perOp {
		if s.units > 0 {
			cal.NsPerUnit[op] = s.ns / s.units
		}
	}
	return cal, nil
}

// MeanRelativeError scores a predictor against accumulated profiles: for
// every eligible bucket it compares the predicted wall time for the bucket's
// mean units against the measured mean, weighting by sample count. Lower is
// better; the calibration round-trip test asserts Fit beats the uncalibrated
// single-ratio baseline on real workloads.
func MeanRelativeError(profiles []ProgramProfile, predict func(op string, units float64) float64) float64 {
	var werr, weight float64
	for i := range profiles {
		for j := range profiles[i].Buckets {
			b := &profiles[i].Buckets[j]
			if b.Hoisted || b.Units <= 0 || b.Count == 0 || b.TotalNS <= 0 {
				continue
			}
			n := float64(b.Count)
			meanNs := b.TotalNS / n
			pred := predict(b.Op, b.Units/n)
			werr += n * math.Abs(pred-meanNs) / meanNs
			weight += n
		}
	}
	if weight == 0 {
		return 0
	}
	return werr / weight
}

// LoadProfiles reads every accumulated program profile from the store,
// skipping records that fail to decode.
func LoadProfiles(st store.Store) ([]ProgramProfile, error) {
	ids, err := st.List(KindProfile)
	if err != nil {
		return nil, fmt.Errorf("profile: listing profiles: %w", err)
	}
	sort.Strings(ids)
	out := make([]ProgramProfile, 0, len(ids))
	for _, id := range ids {
		data, err := st.Get(KindProfile, id)
		if err != nil {
			continue
		}
		var p ProgramProfile
		if err := decodeJSON(data, &p); err != nil {
			continue
		}
		out = append(out, p)
	}
	return out, nil
}

// LoadCalibration reads the fitted coefficient set, returning (nil, nil) when
// none has been saved yet.
func LoadCalibration(st store.Store) (*Calibration, error) {
	data, err := st.Get(KindCalibration, CalibrationID)
	if errors.Is(err, store.ErrNotFound) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("profile: loading calibration: %w", err)
	}
	var cal Calibration
	if err := decodeJSON(data, &cal); err != nil {
		return nil, fmt.Errorf("profile: decoding calibration: %w", err)
	}
	return &cal, nil
}

// SaveCalibration persists the fitted coefficient set under the singleton id.
func SaveCalibration(st store.Store, cal *Calibration) error {
	data, err := encodeJSON(cal)
	if err != nil {
		return fmt.Errorf("profile: encoding calibration: %w", err)
	}
	if err := st.Put(KindCalibration, CalibrationID, data); err != nil {
		return fmt.Errorf("profile: saving calibration: %w", err)
	}
	return nil
}
