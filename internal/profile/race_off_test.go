//go:build !race

package profile_test

// raceEnabled reports whether this test binary runs under the race detector.
const raceEnabled = false
