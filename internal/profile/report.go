package profile

import (
	"encoding/json"
	"sort"
	"strconv"
	"time"

	"eva/internal/execute"
	"eva/internal/obs"
)

// Drift event kinds: the compiler's expectation that the sample violated.
const (
	DriftKindLevel = "level" // post-op ciphertext level ≠ expected chain level
	DriftKindScale = "scale" // |log2(scale) − expected| beyond tolerance
	DriftKindCost  = "cost"  // wall time off the cost-model prediction by ≥ factor
)

// latencyBounds are the histogram upper bounds in seconds, shared with the
// executor's per-op histograms so /metrics and /profile bucket identically.
var latencyBounds = func() []float64 {
	b := make([]float64, len(execute.OpLatencyBounds))
	for i, d := range execute.OpLatencyBounds {
		b[i] = d.Seconds()
	}
	return b
}()

// ByteBounds are the result-size histogram upper bounds in bytes: 4 KiB
// (plain vectors, tiny rings) through 128 MiB (triple-poly paper-scale
// ciphertexts), geometric by 8x.
var ByteBounds = []float64{1 << 12, 1 << 15, 1 << 18, 1 << 21, 1 << 24, 1 << 27}

// BucketKey identifies one aggregation bucket: opcode × post-op ring level ×
// hoisted-batch membership. Level is -1 for plain (unencrypted) results.
type BucketKey struct {
	Op      string
	Level   int
	Hoisted bool
}

// bucket is the internal aggregate; Bucket is its mergeable wire form.
type bucket struct {
	count    uint64
	ns       float64
	maxNs    float64
	units    float64
	bytes    float64
	maxBytes float64
	latency  []uint64
	sizes    []uint64
}

func newBucket() *bucket {
	return &bucket{
		latency: make([]uint64, len(latencyBounds)+1),
		sizes:   make([]uint64, len(ByteBounds)+1),
	}
}

func (b *bucket) observe(rec execute.InstrRecord, units float64) {
	b.count++
	ns := float64(rec.Wall.Nanoseconds())
	b.ns += ns
	if ns > b.maxNs {
		b.maxNs = ns
	}
	b.units += units
	out := float64(rec.OutBytes)
	b.bytes += out
	if out > b.maxBytes {
		b.maxBytes = out
	}
	b.latency[bucketIndexF(latencyBounds, rec.Wall.Seconds())]++
	b.sizes[bucketIndexF(ByteBounds, out)]++
}

func (b *bucket) merge(o *bucket) {
	b.count += o.count
	b.ns += o.ns
	if o.maxNs > b.maxNs {
		b.maxNs = o.maxNs
	}
	b.units += o.units
	b.bytes += o.bytes
	if o.maxBytes > b.maxBytes {
		b.maxBytes = o.maxBytes
	}
	for i := range o.latency {
		b.latency[i] += o.latency[i]
	}
	for i := range o.sizes {
		b.sizes[i] += o.sizes[i]
	}
}

func bucketIndexF(bounds []float64, v float64) int {
	i := 0
	for i < len(bounds) && v > bounds[i] {
		i++
	}
	return i
}

// Bucket is one (opcode, level, hoisted) aggregate in wire form. The raw sums
// (TotalNS, Units, Bytes) make buckets mergeable across nodes and process
// restarts without losing the ability to recompute means; MeanUS and
// PredictedUS are derived conveniences.
type Bucket struct {
	Op       string   `json:"op"`
	Level    int      `json:"level"`
	Hoisted  bool     `json:"hoisted,omitempty"`
	Count    uint64   `json:"count"`
	TotalNS  float64  `json:"total_ns"`
	MaxNS    float64  `json:"max_ns"`
	Units    float64  `json:"cost_units,omitempty"`
	Bytes    float64  `json:"bytes"`
	MaxBytes float64  `json:"max_bytes"`
	Latency  []uint64 `json:"latency_buckets"`
	Sizes    []uint64 `json:"byte_buckets"`
	// MeanUS is TotalNS/Count in microseconds; PredictedUS is the calibrated
	// prediction for this bucket's mean cost units, when a calibration is
	// installed.
	MeanUS      float64 `json:"mean_us"`
	PredictedUS float64 `json:"predicted_us,omitempty"`
}

func (w *Bucket) key() BucketKey { return BucketKey{Op: w.Op, Level: w.Level, Hoisted: w.Hoisted} }

func (w *Bucket) toInternal() *bucket {
	b := newBucket()
	b.count = w.Count
	b.ns = w.TotalNS
	b.maxNs = w.MaxNS
	b.units = w.Units
	b.bytes = w.Bytes
	b.maxBytes = w.MaxBytes
	for i := 0; i < len(b.latency) && i < len(w.Latency); i++ {
		b.latency[i] = w.Latency[i]
	}
	for i := 0; i < len(b.sizes) && i < len(w.Sizes); i++ {
		b.sizes[i] = w.Sizes[i]
	}
	return b
}

// wireBuckets renders an aggregate map sorted by (op, level, hoisted),
// deriving means and — when cal is non-nil — calibrated predictions.
func wireBuckets(m map[BucketKey]*bucket, cal *Calibration) []Bucket {
	out := make([]Bucket, 0, len(m))
	for k, b := range m {
		w := Bucket{
			Op:       k.Op,
			Level:    k.Level,
			Hoisted:  k.Hoisted,
			Count:    b.count,
			TotalNS:  b.ns,
			MaxNS:    b.maxNs,
			Units:    b.units,
			Bytes:    b.bytes,
			MaxBytes: b.maxBytes,
			Latency:  append([]uint64(nil), b.latency...),
			Sizes:    append([]uint64(nil), b.sizes...),
		}
		if b.count > 0 {
			w.MeanUS = b.ns / float64(b.count) / 1e3
			if cal != nil && b.units > 0 {
				w.PredictedUS = cal.PredictNs(k.Op, b.units/float64(b.count)) / 1e3
			}
		}
		out = append(out, w)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Op != out[j].Op {
			return out[i].Op < out[j].Op
		}
		if out[i].Level != out[j].Level {
			return out[i].Level < out[j].Level
		}
		return !out[i].Hoisted && out[j].Hoisted
	})
	return out
}

// DriftEvent records one sampled instruction that violated a compiler
// expectation. TraceID links the event to its GET /traces entry when the
// execution ran under a trace.
type DriftEvent struct {
	Kind     string    `json:"kind"`
	Program  string    `json:"program,omitempty"`
	Node     string    `json:"node,omitempty"`
	Op       string    `json:"op"`
	Level    int       `json:"level"`
	Expected float64   `json:"expected"`
	Measured float64   `json:"measured"`
	WallUS   float64   `json:"wall_us"`
	TraceID  string    `json:"trace_id,omitempty"`
	At       time.Time `json:"at"`
}

// ProgramSummary is the per-program roll-up in a Report.
type ProgramSummary struct {
	ProgramID    string `json:"program_id"`
	Executions   uint64 `json:"executions"`
	Instructions uint64 `json:"instructions"`
	Samples      uint64 `json:"samples"`
}

// ProgramProfile is the persisted (store kind "profile") accumulated profile
// of one program: the calibration fit's input.
type ProgramProfile struct {
	ProgramID    string   `json:"program_id"`
	Executions   uint64   `json:"executions"`
	Instructions uint64   `json:"instructions"`
	Samples      uint64   `json:"samples"`
	Buckets      []Bucket `json:"buckets"`
	UpdatedAt    string   `json:"updated_at,omitempty"`
}

// mergeFrom folds another profile's counters and buckets into p.
func (p *ProgramProfile) mergeFrom(o *ProgramProfile) {
	p.Executions += o.Executions
	p.Instructions += o.Instructions
	p.Samples += o.Samples
	m := map[BucketKey]*bucket{}
	for i := range p.Buckets {
		m[p.Buckets[i].key()] = p.Buckets[i].toInternal()
	}
	for i := range o.Buckets {
		k := o.Buckets[i].key()
		if b, ok := m[k]; ok {
			b.merge(o.Buckets[i].toInternal())
		} else {
			m[k] = o.Buckets[i].toInternal()
		}
	}
	p.Buckets = wireBuckets(m, nil)
}

// Report is the GET /profile response body for one node, and (via
// MergeReports) the cluster-merged view.
type Report struct {
	Node            string            `json:"node,omitempty"`
	Enabled         bool              `json:"enabled"`
	SampleRate      int               `json:"sample_rate"`
	Executions      uint64            `json:"executions"`
	Instructions    uint64            `json:"instructions"`
	Samples         uint64            `json:"samples"`
	NsPerUnit       float64           `json:"ns_per_unit,omitempty"`
	LatencyBoundsUS []float64         `json:"latency_bounds_us"`
	ByteBounds      []float64         `json:"byte_bounds"`
	Buckets         []Bucket          `json:"buckets"`
	DriftTotal      uint64            `json:"drift_total"`
	DriftCounts     map[string]uint64 `json:"drift_counts,omitempty"`
	Drift           []DriftEvent      `json:"drift,omitempty"`
	Programs        []ProgramSummary  `json:"programs,omitempty"`
	Calibration     *Calibration      `json:"calibration,omitempty"`
}

func latencyBoundsUS() []float64 {
	out := make([]float64, len(latencyBounds))
	for i, s := range latencyBounds {
		out[i] = s * 1e6
	}
	return out
}

// Report snapshots the collector.
func (c *Collector) Report() Report {
	rep := Report{
		Enabled:         c.Enabled(),
		LatencyBoundsUS: latencyBoundsUS(),
		ByteBounds:      append([]float64(nil), ByteBounds...),
		Buckets:         []Bucket{},
	}
	if c == nil {
		return rep
	}
	rep.Node = c.cfg.Node
	rep.SampleRate = c.cfg.SampleRate
	cal := c.calib.Load()
	rep.Calibration = cal

	c.mu.Lock()
	defer c.mu.Unlock()
	rep.Executions = c.executions
	rep.Instructions = c.instructions
	rep.Samples = c.samples
	if c.totalUnits > 0 {
		rep.NsPerUnit = c.totalNs / c.totalUnits
	}
	rep.Buckets = wireBuckets(c.buckets, cal)
	rep.DriftTotal = c.driftTotal
	if len(c.driftCounts) > 0 {
		rep.DriftCounts = make(map[string]uint64, len(c.driftCounts))
		for k, v := range c.driftCounts {
			rep.DriftCounts[k] = v
		}
	}
	// Ring order → chronological order.
	for i := 0; i < len(c.drift); i++ {
		rep.Drift = append(rep.Drift, c.drift[(c.driftNext+i)%len(c.drift)])
	}
	for id, pa := range c.programs {
		rep.Programs = append(rep.Programs, ProgramSummary{
			ProgramID:    id,
			Executions:   pa.executions,
			Instructions: pa.instructions,
			Samples:      pa.samples,
		})
	}
	sort.Slice(rep.Programs, func(i, j int) bool { return rep.Programs[i].ProgramID < rep.Programs[j].ProgramID })
	return rep
}

// MergeReports combines per-node reports into one cluster view: counters and
// buckets sum (each sample was recorded by exactly one node, so summing never
// double-counts), drift events interleave, and program summaries merge by id.
func MergeReports(node string, reports []Report) Report {
	merged := Report{
		Node:            node,
		LatencyBoundsUS: latencyBoundsUS(),
		ByteBounds:      append([]float64(nil), ByteBounds...),
		Buckets:         []Bucket{},
	}
	buckets := map[BucketKey]*bucket{}
	programs := map[string]*ProgramSummary{}
	var totalNs, totalUnits float64
	for _, rep := range reports {
		if rep.Enabled {
			merged.Enabled = true
		}
		if rep.SampleRate > merged.SampleRate {
			merged.SampleRate = rep.SampleRate
		}
		merged.Executions += rep.Executions
		merged.Instructions += rep.Instructions
		merged.Samples += rep.Samples
		merged.DriftTotal += rep.DriftTotal
		for k, v := range rep.DriftCounts {
			if merged.DriftCounts == nil {
				merged.DriftCounts = map[string]uint64{}
			}
			merged.DriftCounts[k] += v
		}
		for i := range rep.Buckets {
			k := rep.Buckets[i].key()
			ib := rep.Buckets[i].toInternal()
			if b, ok := buckets[k]; ok {
				b.merge(ib)
			} else {
				buckets[k] = ib
			}
			if !k.Hoisted && ib.units > 0 {
				totalNs += ib.ns
				totalUnits += ib.units
			}
		}
		merged.Drift = append(merged.Drift, rep.Drift...)
		for _, ps := range rep.Programs {
			if agg, ok := programs[ps.ProgramID]; ok {
				agg.Executions += ps.Executions
				agg.Instructions += ps.Instructions
				agg.Samples += ps.Samples
			} else {
				cp := ps
				programs[ps.ProgramID] = &cp
			}
		}
		if merged.Calibration == nil {
			merged.Calibration = rep.Calibration
		}
	}
	merged.Buckets = wireBuckets(buckets, merged.Calibration)
	if totalUnits > 0 {
		merged.NsPerUnit = totalNs / totalUnits
	}
	sort.Slice(merged.Drift, func(i, j int) bool { return merged.Drift[i].At.Before(merged.Drift[j].At) })
	if len(merged.Drift) > 256 {
		merged.Drift = merged.Drift[len(merged.Drift)-256:]
	}
	for _, ps := range programs {
		merged.Programs = append(merged.Programs, *ps)
	}
	sort.Slice(merged.Programs, func(i, j int) bool { return merged.Programs[i].ProgramID < merged.Programs[j].ProgramID })
	return merged
}

// WriteProm renders the collector as eva_profile_* Prometheus families.
func (c *Collector) WriteProm(p *obs.PromWriter) {
	rep := c.Report()
	p.Meta("eva_profile_executions_total", "Executions sampled by the instruction profiler.", "counter")
	p.Sample("eva_profile_executions_total", nil, float64(rep.Executions))
	p.Meta("eva_profile_instructions_total", "Instructions seen by the profiler (sampled or skipped).", "counter")
	p.Sample("eva_profile_instructions_total", nil, float64(rep.Instructions))
	p.Meta("eva_profile_samples_total", "Instructions actually sampled (one per sample-rate stride).", "counter")
	p.Sample("eva_profile_samples_total", nil, float64(rep.Samples))
	p.Meta("eva_profile_drift_total", "Sampled instructions diverging from compiler expectations, by kind.", "counter")
	for _, kind := range []string{DriftKindLevel, DriftKindScale, DriftKindCost} {
		p.Sample("eva_profile_drift_total", map[string]string{"kind": kind}, float64(rep.DriftCounts[kind]))
	}
	if rep.NsPerUnit > 0 {
		p.Meta("eva_profile_ns_per_unit", "Measured nanoseconds per abstract cost-model unit (global ratio).", "gauge")
		p.Sample("eva_profile_ns_per_unit", nil, rep.NsPerUnit)
	}
	if len(rep.Buckets) > 0 {
		p.Meta("eva_profile_op_duration_seconds", "Per-instruction wall time by opcode and post-op ring level.", "histogram")
		for i := range rep.Buckets {
			b := &rep.Buckets[i]
			p.Histogram("eva_profile_op_duration_seconds", bucketLabels(b), obs.HistogramSnapshot{
				Bounds: latencyBounds,
				Counts: b.Latency,
				Sum:    b.TotalNS / 1e9,
				Count:  b.Count,
			})
		}
		p.Meta("eva_profile_op_result_bytes", "Per-instruction result footprint by opcode and post-op ring level.", "histogram")
		for i := range rep.Buckets {
			b := &rep.Buckets[i]
			p.Histogram("eva_profile_op_result_bytes", bucketLabels(b), obs.HistogramSnapshot{
				Bounds: ByteBounds,
				Counts: b.Sizes,
				Sum:    b.Bytes,
				Count:  b.Count,
			})
		}
	}
	if cal := rep.Calibration; cal != nil {
		p.Meta("eva_profile_calibration_ns_per_unit", "Fitted per-opcode cost coefficients (ns per cost-model unit).", "gauge")
		for _, op := range sortedKeys(cal.NsPerUnit) {
			p.Sample("eva_profile_calibration_ns_per_unit", map[string]string{"op": op}, cal.NsPerUnit[op])
		}
	}
}

func bucketLabels(b *Bucket) map[string]string {
	return map[string]string{
		"op":      b.Op,
		"level":   strconv.Itoa(b.Level),
		"hoisted": strconv.FormatBool(b.Hoisted),
	}
}

func sortedKeys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func encodeJSON(v any) ([]byte, error)    { return json.Marshal(v) }
func decodeJSON(data []byte, v any) error { return json.Unmarshal(data, v) }
