// Package profile is the per-instruction execution flight recorder: it
// samples measured wall time, opcode, ring level, operand footprints,
// hoisted-batch membership, and the post-op scale/level trajectory of every
// Nth instruction the executor completes, and compares each sample against
// the compiler's static expectations — the analysis.CostModel prediction and
// the checked scale/level the scale-management passes assigned. Divergence
// becomes a structured drift event; agreement accumulates into per-(opcode,
// level) latency and allocation histograms that feed /profile, the
// eva_profile_* Prometheus families, and the calibration fit that turns the
// abstract cost model into measured nanosecond coefficients.
//
// Overhead design: the executor's OnInstruction callback runs under the run
// lock, so the recorder does no locking of its own — it owns its run
// exclusively and only touches the shared collector once, at Finish. The
// sampling decision is a counter test; skipped instructions cost one branch.
// Persistence (store kind "profile", one record per program id) is throttled
// per program and runs outside the collector lock.
package profile

import (
	"log/slog"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"eva/internal/analysis"
	"eva/internal/compile"
	"eva/internal/core"
	"eva/internal/execute"
	"eva/internal/rewrite"
	"eva/internal/store"
)

// DefaultSampleRate is the default instruction sampling stride: one in every
// DefaultSampleRate instructions is recorded. Chosen so the always-on path
// stays within benchmark noise (see BenchmarkProfiledExecuteOn).
const DefaultSampleRate = 16

// maxDriftPerRun bounds the drift events one execution can contribute, so a
// systematically divergent program cannot flood the collector's ring.
const maxDriftPerRun = 32

// Config configures a Collector. Zero values select defaults; SampleRate < 0
// disables profiling entirely (Recorder returns nil).
type Config struct {
	// SampleRate records one in every SampleRate instructions (1 = all,
	// 0 = DefaultSampleRate, < 0 = disabled).
	SampleRate int
	// ScaleTolBits is the allowed |log2(measured) − expected| scale deviation
	// before a "scale" drift event is recorded (0 = 0.5 bits).
	ScaleTolBits float64
	// CostDriftFactor flags a "cost" drift when measured wall time differs
	// from the predicted time by at least this factor either way (0 = 8).
	CostDriftFactor float64
	// MinCostWall is the minimum measured wall time for a sample to be
	// eligible for cost-drift checking; faster instructions are all scheduler
	// noise (0 = 250µs).
	MinCostWall time.Duration
	// DriftRing bounds the retained drift events (0 = 256).
	DriftRing int
	// PersistInterval throttles per-program persistence to Store (0 = 5s).
	PersistInterval time.Duration
	// Store, when non-nil, accumulates per-program profiles under kind
	// "profile" across process restarts.
	Store store.Store
	// Node labels this collector's reports and drift events.
	Node string
	// Logger, when non-nil, receives throttled drift warnings.
	Logger *slog.Logger
}

func (cfg Config) withDefaults() Config {
	if cfg.SampleRate == 0 {
		cfg.SampleRate = DefaultSampleRate
	}
	if cfg.ScaleTolBits == 0 {
		cfg.ScaleTolBits = 0.5
	}
	if cfg.CostDriftFactor == 0 {
		cfg.CostDriftFactor = 8
	}
	if cfg.MinCostWall == 0 {
		cfg.MinCostWall = 250 * time.Microsecond
	}
	if cfg.DriftRing == 0 {
		cfg.DriftRing = 256
	}
	if cfg.PersistInterval == 0 {
		cfg.PersistInterval = 5 * time.Second
	}
	return cfg
}

// Collector aggregates instruction samples across executions. It is safe for
// concurrent use; per-run state lives in Recorders that fold in at Finish.
type Collector struct {
	cfg     Config
	enabled bool

	preds sync.Map // program id -> *predictions
	calib atomic.Pointer[Calibration]

	mu           sync.Mutex
	executions   uint64
	instructions uint64
	samples      uint64
	buckets      map[BucketKey]*bucket
	driftCounts  map[string]uint64
	drift        []DriftEvent // ring of size cfg.DriftRing
	driftNext    int
	driftTotal   uint64
	totalNs      float64 // cipher, non-hoisted compute samples only:
	totalUnits   float64 // the global measured ns-per-cost-unit baseline
	programs     map[string]*programAgg
	lastDriftLog time.Time
}

type programAgg struct {
	executions   uint64
	instructions uint64
	samples      uint64
	buckets      map[BucketKey]*bucket
	lastPersist  time.Time

	persistMu sync.Mutex // serializes baseline load + store writes
	loaded    bool
	baseline  *ProgramProfile
}

// NewCollector builds a collector. The returned collector is never nil; when
// cfg.SampleRate < 0 it is disabled and Recorder returns nil recorders.
func NewCollector(cfg Config) *Collector {
	enabled := cfg.SampleRate >= 0
	cfg = cfg.withDefaults()
	return &Collector{
		cfg:         cfg,
		enabled:     enabled,
		buckets:     map[BucketKey]*bucket{},
		driftCounts: map[string]uint64{},
		programs:    map[string]*programAgg{},
	}
}

// Enabled reports whether the collector records samples at all.
func (c *Collector) Enabled() bool { return c != nil && c.enabled }

// SampleRate returns the configured sampling stride.
func (c *Collector) SampleRate() int { return c.cfg.SampleRate }

// SetCalibration installs fitted coefficients; subsequent cost-drift checks
// and report predictions use them instead of the running global ratio.
func (c *Collector) SetCalibration(cal *Calibration) { c.calib.Store(cal) }

// Calibration returns the installed coefficient set, or nil.
func (c *Collector) Calibration() *Calibration {
	if c == nil {
		return nil
	}
	return c.calib.Load()
}

// predictions is the per-program static expectation table, computed once per
// program id and shared by every Recorder for that program.
type predictions struct {
	perTerm  map[*core.Term]pred
	maxLevel int
	// skipExpect suppresses level/scale drift checks: with ExtraLevels
	// pipeline headroom, inputs legally enter below fresh and every absolute
	// level expectation shifts by the (unknown at compile time) entry depth.
	skipExpect bool
}

type pred struct {
	units    float64 // cost-model units; 0 for leaves
	expLevel int     // expected post-op ciphertext level
	logScale float64 // expected log2 scale
}

func buildPredictions(res *compile.Result) *predictions {
	model := analysis.CostModel{LogN: res.LogN, TotalLevels: len(res.Plan.BitSizes)}
	levels := rewrite.Levels(res.Program)
	types := res.Types
	if types == nil {
		types = res.Program.InferTypes()
	}
	p := &predictions{
		perTerm:    make(map[*core.Term]pred),
		maxLevel:   len(res.Plan.BitSizes) - 1,
		skipExpect: res.Options.ExtraLevels > 0,
	}
	for _, t := range res.Program.TopoSort() {
		if types[t] != core.TypeCipher {
			continue
		}
		var units float64
		if !t.IsLeaf() {
			ctct := t.Op == core.OpMultiply &&
				types[t.Parm(0)] == core.TypeCipher && types[t.Parm(1)] == core.TypeCipher
			units = model.OpUnits(t.Op, levels[t], ctct)
		}
		p.perTerm[t] = pred{
			units:    units,
			expLevel: p.maxLevel - levels[t],
			logScale: res.Scales[t],
		}
	}
	return p
}

func (c *Collector) predictionsFor(programID string, res *compile.Result) *predictions {
	if v, ok := c.preds.Load(programID); ok {
		return v.(*predictions)
	}
	v, _ := c.preds.LoadOrStore(programID, buildPredictions(res))
	return v.(*predictions)
}

// Recorder samples one execution. It is NOT internally synchronized: the
// executor serializes OnInstruction calls under the run lock, and Finish must
// be called after the run returns. A nil Recorder is a valid no-op.
type Recorder struct {
	c         *Collector
	p         *predictions
	programID string
	traceID   string
	rate      int
	nsPerUnit float64 // cost-drift baseline when no calibration is installed
	cal       *Calibration

	n           uint64
	samples     uint64
	local       map[BucketKey]*bucket
	drift       []DriftEvent
	driftCounts map[string]uint64
}

// Recorder starts sampling one execution of the given compiled program.
// traceID, when non-empty, is attached to drift events so a /profile outlier
// links to its /traces entry. Returns nil when the collector is disabled.
func (c *Collector) Recorder(programID string, res *compile.Result, traceID string) *Recorder {
	if c == nil || !c.enabled {
		return nil
	}
	r := &Recorder{
		c:         c,
		p:         c.predictionsFor(programID, res),
		programID: programID,
		traceID:   traceID,
		rate:      c.cfg.SampleRate,
		cal:       c.calib.Load(),
		local:     map[BucketKey]*bucket{},
	}
	if r.cal == nil {
		// Snapshot the running global ratio once per run: a lock per
		// execution, not per instruction. Require a minimum population so
		// early noise does not masquerade as a baseline.
		c.mu.Lock()
		if c.samples >= 256 && c.totalUnits > 0 {
			r.nsPerUnit = c.totalNs / c.totalUnits
		}
		c.mu.Unlock()
	}
	return r
}

// OnInstruction is the execute.RunOptions.OnInstruction callback. It must be
// fast: the executor holds the run lock while it runs.
func (r *Recorder) OnInstruction(t *core.Term, rec execute.InstrRecord) {
	if r == nil {
		return
	}
	i := r.n
	r.n++
	if r.rate > 1 && i%uint64(r.rate) != 0 {
		return
	}
	r.samples++
	pd, known := r.p.perTerm[t]
	key := BucketKey{Op: t.Op.String(), Level: rec.Level, Hoisted: rec.Hoisted}
	b := r.local[key]
	if b == nil {
		b = newBucket()
		r.local[key] = b
	}
	b.observe(rec, pd.units)

	if !rec.Cipher || !known {
		return
	}
	wallNs := float64(rec.Wall.Nanoseconds())
	if !r.p.skipExpect {
		if rec.Level != pd.expLevel {
			r.addDrift(DriftKindLevel, t, rec, float64(pd.expLevel), float64(rec.Level))
		}
		if logScale := math.Log2(rec.Scale); rec.Scale > 0 && math.Abs(logScale-pd.logScale) > r.c.cfg.ScaleTolBits {
			r.addDrift(DriftKindScale, t, rec, pd.logScale, logScale)
		}
	}
	// Cost drift: compare measured wall time against the calibrated (or
	// running-baseline) prediction. Hoisted members are excluded — the first
	// scheduled member absorbs the whole batch's key-switch work, so its wall
	// time diverges from the per-instruction model by design.
	if rec.Hoisted || pd.units <= 0 || rec.Wall < r.c.cfg.MinCostWall {
		return
	}
	var predNs float64
	if r.cal != nil {
		predNs = r.cal.PredictNs(key.Op, pd.units)
	} else {
		predNs = r.nsPerUnit * pd.units
	}
	if predNs <= 0 {
		return
	}
	if f := r.c.cfg.CostDriftFactor; wallNs >= predNs*f || wallNs*f <= predNs {
		r.addDrift(DriftKindCost, t, rec, predNs, wallNs)
	}
}

func (r *Recorder) addDrift(kind string, t *core.Term, rec execute.InstrRecord, expected, measured float64) {
	if r.driftCounts == nil {
		r.driftCounts = map[string]uint64{}
	}
	r.driftCounts[kind]++
	if len(r.drift) >= maxDriftPerRun {
		return
	}
	r.drift = append(r.drift, DriftEvent{
		Kind:     kind,
		Program:  r.programID,
		Node:     r.c.cfg.Node,
		Op:       t.Op.String(),
		Level:    rec.Level,
		Expected: expected,
		Measured: measured,
		WallUS:   float64(rec.Wall.Nanoseconds()) / 1e3,
		TraceID:  r.traceID,
	})
}

// Finish folds the run's samples into the collector and triggers throttled
// persistence. Must be called at most once, after the run has returned.
func (r *Recorder) Finish() {
	if r == nil || r.c == nil {
		return
	}
	r.c.fold(r)
	r.c = nil
}

func (c *Collector) fold(r *Recorder) {
	now := time.Now()
	var persist *programAgg

	c.mu.Lock()
	c.executions++
	c.instructions += r.n
	c.samples += r.samples
	for k, lb := range r.local {
		b := c.buckets[k]
		if b == nil {
			b = newBucket()
			c.buckets[k] = b
		}
		b.merge(lb)
		if !k.Hoisted && lb.units > 0 {
			c.totalNs += lb.ns
			c.totalUnits += lb.units
		}
	}
	for kind, n := range r.driftCounts {
		c.driftCounts[kind] += n
	}
	for _, ev := range r.drift {
		ev.At = now
		if len(c.drift) < c.cfg.DriftRing {
			c.drift = append(c.drift, ev)
		} else {
			c.drift[c.driftNext] = ev
			c.driftNext = (c.driftNext + 1) % c.cfg.DriftRing
		}
		c.driftTotal++
	}
	pa := c.programs[r.programID]
	if pa == nil {
		pa = &programAgg{buckets: map[BucketKey]*bucket{}}
		c.programs[r.programID] = pa
	}
	pa.executions++
	pa.instructions += r.n
	pa.samples += r.samples
	for k, lb := range r.local {
		b := pa.buckets[k]
		if b == nil {
			b = newBucket()
			pa.buckets[k] = b
		}
		b.merge(lb)
	}
	if c.cfg.Store != nil && now.Sub(pa.lastPersist) >= c.cfg.PersistInterval {
		pa.lastPersist = now
		persist = pa
	}
	shouldLog := len(r.drift) > 0 && c.cfg.Logger != nil && now.Sub(c.lastDriftLog) >= time.Second
	if shouldLog {
		c.lastDriftLog = now
	}
	c.mu.Unlock()

	if shouldLog {
		ev := r.drift[0]
		c.cfg.Logger.Warn("profile drift",
			slog.String("program", r.programID),
			slog.String("kind", ev.Kind),
			slog.String("op", ev.Op),
			slog.Int("level", ev.Level),
			slog.Float64("expected", ev.Expected),
			slog.Float64("measured", ev.Measured),
			slog.String("trace_id", r.traceID),
			slog.Int("events", len(r.drift)),
		)
	}
	if persist != nil {
		c.persistProgram(r.programID, persist)
	}
}

// persistProgram writes the accumulated profile for one program: the
// baseline loaded from the store on first touch plus everything this process
// has observed since. Runs outside the collector lock.
func (c *Collector) persistProgram(id string, pa *programAgg) {
	pa.persistMu.Lock()
	defer pa.persistMu.Unlock()
	if !pa.loaded {
		if data, err := c.cfg.Store.Get(KindProfile, id); err == nil {
			var base ProgramProfile
			if decodeErr := decodeJSON(data, &base); decodeErr == nil {
				pa.baseline = &base
			}
		}
		pa.loaded = true
	}
	snap := c.snapshotProgram(id, pa)
	if pa.baseline != nil {
		snap.mergeFrom(pa.baseline)
	}
	snap.UpdatedAt = time.Now().UTC().Format(time.RFC3339)
	data, err := encodeJSON(snap)
	if err != nil {
		return
	}
	if err := c.cfg.Store.Put(KindProfile, id, data); err != nil && c.cfg.Logger != nil {
		c.cfg.Logger.Warn("profile persist failed", slog.String("program", id), slog.String("error", err.Error()))
	}
}

func (c *Collector) snapshotProgram(id string, pa *programAgg) *ProgramProfile {
	c.mu.Lock()
	defer c.mu.Unlock()
	snap := &ProgramProfile{
		ProgramID:    id,
		Executions:   pa.executions,
		Instructions: pa.instructions,
		Samples:      pa.samples,
		Buckets:      wireBuckets(pa.buckets, nil),
	}
	return snap
}

// Flush persists every program's accumulated profile immediately, ignoring
// the persistence interval. Called on server shutdown and before a
// calibration fit so the store reflects everything observed.
func (c *Collector) Flush() {
	if c == nil || !c.enabled || c.cfg.Store == nil {
		return
	}
	c.mu.Lock()
	ids := make([]string, 0, len(c.programs))
	aggs := make([]*programAgg, 0, len(c.programs))
	now := time.Now()
	for id, pa := range c.programs {
		ids = append(ids, id)
		aggs = append(aggs, pa)
		pa.lastPersist = now
	}
	c.mu.Unlock()
	for i, id := range ids {
		c.persistProgram(id, aggs[i])
	}
}
