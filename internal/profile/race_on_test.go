//go:build race

package profile_test

// raceEnabled reports that this test binary runs under the race detector,
// whose instrumentation slows each opcode by a different factor and so
// distorts the timing ratios the calibration tests assert on.
const raceEnabled = true
