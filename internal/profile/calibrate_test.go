package profile_test

import (
	"testing"

	"eva/internal/profile"
	"eva/internal/store"
)

// TestCalibrationRoundTrip is the acceptance check for the calibration loop:
// profile the hetensor matmul and deep-chain workloads, fit per-opcode
// coefficients from the persisted profiles, and verify the fit (a) is
// non-empty, (b) survives a store round-trip, and (c) reduces the mean
// relative prediction error against the measured data compared with the
// uncalibrated cost model (best-case single global ns-per-unit scaling).
func TestCalibrationRoundTrip(t *testing.T) {
	st := store.NewMemory()
	defer st.Close()
	c := profile.NewCollector(profile.Config{SampleRate: 1, Store: st})

	deep := buildDeepChain(t)
	mm := buildMatmul(t, 64, 8)
	runProfiled(t, c, "deep", deep, "", 7)
	runProfiled(t, c, "matmul", mm, "", 8)
	runProfiled(t, c, "deep", deep, "", 9)
	runProfiled(t, c, "matmul", mm, "", 10)
	c.Flush()

	profiles, err := profile.LoadProfiles(st)
	if err != nil {
		t.Fatal(err)
	}
	if len(profiles) != 2 {
		t.Fatalf("got %d profiles, want 2", len(profiles))
	}
	cal, err := profile.Fit(profiles)
	if err != nil {
		t.Fatal(err)
	}
	if len(cal.NsPerUnit) == 0 || cal.BaselineNsPerUnit <= 0 || cal.Samples == 0 {
		t.Fatalf("degenerate fit: %+v", cal)
	}
	for op, coeff := range cal.NsPerUnit {
		if coeff <= 0 {
			t.Fatalf("non-positive coefficient for %s: %v", op, coeff)
		}
	}

	if err := profile.SaveCalibration(st, cal); err != nil {
		t.Fatal(err)
	}
	loaded, err := profile.LoadCalibration(st)
	if err != nil {
		t.Fatal(err)
	}
	if loaded == nil || loaded.BaselineNsPerUnit != cal.BaselineNsPerUnit || len(loaded.NsPerUnit) != len(cal.NsPerUnit) {
		t.Fatalf("calibration store round-trip mismatch: saved %+v, loaded %+v", cal, loaded)
	}

	// The uncalibrated model can at best be scaled by one global constant;
	// the per-opcode fit must predict the measured means strictly better.
	// Race instrumentation slows each opcode by a different factor, washing
	// out the real per-op timing ratios, so under -race the fit only has to
	// stay in the baseline's neighborhood; the strict improvement assertion
	// runs on every un-instrumented build.
	uncalibrated := func(op string, units float64) float64 { return cal.BaselineNsPerUnit * units }
	baseErr := profile.MeanRelativeError(profiles, uncalibrated)
	calErr := profile.MeanRelativeError(profiles, cal.PredictNs)
	if baseErr <= 0 {
		t.Fatalf("baseline error %v, want > 0 (workloads too uniform to distinguish?)", baseErr)
	}
	bar := baseErr
	if raceEnabled {
		bar = baseErr * 1.25
	}
	if calErr >= bar {
		t.Fatalf("calibration did not improve prediction: calibrated MRE %.4f vs uncalibrated %.4f", calErr, baseErr)
	}
	t.Logf("mean relative error: uncalibrated %.4f -> calibrated %.4f (%d ops, %d samples)",
		baseErr, calErr, len(cal.NsPerUnit), cal.Samples)
}

// TestFitNoSamples checks the error path: nothing eligible to fit.
func TestFitNoSamples(t *testing.T) {
	if _, err := profile.Fit(nil); err == nil {
		t.Fatal("Fit(nil) succeeded")
	}
	if _, err := profile.Fit([]profile.ProgramProfile{{ProgramID: "x"}}); err == nil {
		t.Fatal("Fit over empty profile succeeded")
	}
}

// TestLoadCalibrationMissing: an empty store yields (nil, nil), not an error.
func TestLoadCalibrationMissing(t *testing.T) {
	st := store.NewMemory()
	defer st.Close()
	cal, err := profile.LoadCalibration(st)
	if err != nil || cal != nil {
		t.Fatalf("LoadCalibration on empty store = %+v, %v; want nil, nil", cal, err)
	}
}
