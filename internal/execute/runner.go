package execute

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"eva/internal/ckks"
	"eva/internal/compile"
	"eva/internal/core"
	"eva/internal/rewrite"
)

// Scheduler selects how the instruction DAG is scheduled onto worker threads.
type Scheduler int

const (
	// SchedulerParallel is EVA's scheduler: instructions are dispatched
	// asynchronously as soon as their operands are available, exploiting
	// parallelism across kernels.
	SchedulerParallel Scheduler = iota
	// SchedulerBulkSynchronous models the CHET baseline: instructions are
	// executed kernel by kernel, with a barrier between waves, limiting
	// parallelism to what is available inside a single kernel.
	SchedulerBulkSynchronous
	// SchedulerSequential executes instructions one at a time (used for the
	// single-thread measurements of Table 8 and Figure 7).
	SchedulerSequential
)

// RunOptions configures one execution.
type RunOptions struct {
	// Workers is the number of worker goroutines (0 means GOMAXPROCS).
	Workers   int
	Scheduler Scheduler
	// Progress, when non-nil, is called after every completed instruction with
	// the number of instructions finished so far and the total. Calls are
	// serialized (never concurrent) but may come from any worker goroutine, so
	// the callback must be fast and must not call back into the executor.
	Progress func(done, total int)
	// DisableHoisting turns off hoisted rotation batching: every rotation is
	// then an independent key switch, as in the sequential baseline.
	DisableHoisting bool
	// OnHoistedBatch, when non-nil, is called once per dispatched hoisted
	// batch with the number of distinct rotation steps it evaluated. It may be
	// called from any worker goroutine (calls for different batches can be
	// concurrent) and must not call back into the executor.
	OnHoistedBatch func(rotations int)
	// OnInstruction, when non-nil, is called after every completed instruction
	// with the term and its measured record. Like Progress, calls are
	// serialized under the run's lock but may come from any worker goroutine;
	// the callback must be fast and must not call back into the executor.
	OnInstruction func(t *core.Term, rec InstrRecord)
}

// InstrRecord is the per-instruction measurement handed to
// RunOptions.OnInstruction: what actually happened when the instruction ran,
// for the profiler to compare against the compiler's static expectations.
type InstrRecord struct {
	// Wall is the instruction's evaluation wall time (backend call only, not
	// queueing). For the first-scheduled member of a hoisted rotation batch it
	// includes the whole batch's shared key-switch work.
	Wall time.Duration
	// Cipher reports whether the result is a ciphertext. Level and Scale are
	// the result ciphertext's post-op level and raw scale (Level is -1 and
	// Scale 0 for plain results).
	Cipher bool
	Level  int
	Scale  float64
	// OutBytes is the result's memory footprint; OperandBytes sums the live
	// footprints of the instruction's operands at completion time.
	OutBytes     int
	OperandBytes int
	Operands     int
	// Hoisted reports membership in a hoisted rotation batch.
	Hoisted bool
}

// value is the run-time value of a term: either a ciphertext or a plain
// vector of the program's vector size.
type value struct {
	ct    *ckks.Ciphertext
	plain []float64
}

func (v *value) bytes() int {
	if v == nil {
		return 0
	}
	if v.ct != nil {
		return v.ct.MemoryBytes()
	}
	return 8 * len(v.plain)
}

// runState carries the shared mutable state of one execution.
type runState struct {
	stdctx  context.Context
	ctx     *Context
	res     *compile.Result
	in      *EncryptedInputs
	vecSize int
	total   int
	onDone  func(done, total int)
	onInstr func(t *core.Term, rec InstrRecord)

	// hoist maps each rotation instruction that belongs to a hoistable set
	// (two or more rotations of one Cipher term; see rewrite.RotationSets) to
	// its group. Nil when hoisting is disabled.
	hoist          map[*core.Term]*hoistGroup
	onHoistedBatch func(rotations int)

	mu         sync.Mutex
	values     map[*core.Term]*value
	refcounts  map[*core.Term]int
	liveBytes  int
	liveValues int
	completed  int
	stats      RunStats
	firstErr   error
}

// hoistGroup carries the shared state of one hoistable rotation set during a
// run: whichever member is scheduled first computes the whole batch with one
// shared decomposition (Evaluator.RotateHoisted) and parks the results; the
// remaining members pick theirs up without touching the backend.
type hoistGroup struct {
	members []*core.Term

	mu      sync.Mutex
	results map[*core.Term]*ckks.Ciphertext
	failed  bool
}

// hoistedRotation returns the batch result for member t, computing the batch
// on first use. ok is false when the batch failed (the caller falls back to
// an independent rotation, so a batch error can only ever degrade
// performance, not correctness).
func (st *runState) hoistedRotation(g *hoistGroup, t *core.Term, src *ckks.Ciphertext) (*ckks.Ciphertext, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.failed {
		return nil, false
	}
	if g.results == nil {
		ks := make([]int, len(g.members))
		for i, m := range g.members {
			ks[i] = rewrite.EffectiveRotation(m)
		}
		batch, err := st.ctx.Evaluator.RotateHoisted(src, ks)
		if err != nil {
			g.failed = true
			return nil, false
		}
		g.results = make(map[*core.Term]*ckks.Ciphertext, len(g.members))
		for _, m := range g.members {
			g.results[m] = batch[rewrite.EffectiveRotation(m)]
		}
		st.mu.Lock()
		st.stats.HoistedBatches++
		st.stats.HoistedRotations += len(batch)
		st.mu.Unlock()
		if st.onHoistedBatch != nil {
			st.onHoistedBatch(len(batch))
		}
	}
	ct, ok := g.results[t]
	delete(g.results, t) // each member is consumed exactly once
	return ct, ok
}

// Run executes a compiled program on encrypted inputs using the CKKS backend.
// It is RunContext with a background context (no cancellation).
func Run(ctx *Context, res *compile.Result, in *EncryptedInputs, opts RunOptions) (*Outputs, error) {
	return RunContext(context.Background(), ctx, res, in, opts)
}

// RunContext executes a compiled program on encrypted inputs using the CKKS
// backend. Cancelling stdctx stops the run promptly: workers finish the
// instruction they are evaluating (CKKS kernels are not interruptible
// mid-operation), start no new ones, and RunContext returns the context's
// error.
func RunContext(stdctx context.Context, ctx *Context, res *compile.Result, in *EncryptedInputs, opts RunOptions) (*Outputs, error) {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.Scheduler == SchedulerSequential {
		opts.Workers = 1
	}
	start := time.Now()
	order := res.Program.TopoSort()

	st := &runState{
		stdctx:    stdctx,
		ctx:       ctx,
		res:       res,
		in:        in,
		vecSize:   res.Program.VecSize,
		total:     len(order),
		onDone:    opts.Progress,
		onInstr:   opts.OnInstruction,
		values:    make(map[*core.Term]*value, len(order)),
		refcounts: make(map[*core.Term]int, len(order)),
	}
	st.stats.PerOp = make(map[string]*OpStats)
	if !opts.DisableHoisting {
		st.onHoistedBatch = opts.OnHoistedBatch
		sets := rewrite.RotationSets(res.Program)
		if len(sets) > 0 {
			st.hoist = make(map[*core.Term]*hoistGroup)
			for _, set := range sets {
				g := &hoistGroup{members: set}
				for _, m := range set {
					st.hoist[m] = g
				}
			}
		}
	}
	outputRefs := map[*core.Term]int{}
	for _, o := range res.Program.Outputs() {
		outputRefs[o.Term]++
	}
	for _, t := range order {
		st.refcounts[t] = t.NumUses() + outputRefs[t]
	}

	var err error
	switch opts.Scheduler {
	case SchedulerParallel, SchedulerSequential:
		err = runParallel(st, order, opts.Workers)
	case SchedulerBulkSynchronous:
		err = runBulkSynchronous(st, order, opts.Workers)
	default:
		err = fmt.Errorf("execute: unknown scheduler %d", opts.Scheduler)
	}
	if err != nil {
		return nil, err
	}

	out := &Outputs{Cipher: map[string]*ckks.Ciphertext{}, Plain: map[string][]float64{}}
	for _, o := range res.Program.Outputs() {
		v := st.values[o.Term]
		if v == nil {
			return nil, fmt.Errorf("execute: output %q was never computed", o.Name)
		}
		if v.ct != nil {
			out.Cipher[o.Name] = v.ct
		} else {
			out.Plain[o.Name] = v.plain
		}
	}
	st.stats.Instructions = len(order)
	st.stats.Workers = opts.Workers
	st.stats.WallTime = time.Since(start)
	out.Stats = st.stats
	return out, nil
}

// runParallel is EVA's asynchronous DAG scheduler: a pool of workers consumes
// a ready queue; finishing a term may make its uses ready.
func runParallel(st *runState, order []*core.Term, workers int) error {
	if workers > len(order) {
		workers = len(order)
	}
	pending := make(map[*core.Term]int, len(order))
	ready := make(chan *core.Term, len(order))
	for _, t := range order {
		n := 0
		seen := map[*core.Term]bool{}
		for _, parm := range t.Parms() {
			if !seen[parm] {
				seen[parm] = true
				n++
			}
		}
		pending[t] = n
		if n == 0 {
			ready <- t
		}
	}

	var mu sync.Mutex // guards pending and remaining
	remaining := len(order)
	done := make(chan struct{})
	var closeDone sync.Once
	var wg sync.WaitGroup
	cancelled := st.stdctx.Done()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				case <-cancelled:
					st.setErr(st.stdctx.Err())
					closeDone.Do(func() { close(done) })
					return
				case t, ok := <-ready:
					if !ok {
						return
					}
					// Re-check cancellation before starting work: the ready
					// branch may win the select race after cancellation.
					select {
					case <-cancelled:
						st.setErr(st.stdctx.Err())
						closeDone.Do(func() { close(done) })
						return
					default:
					}
					if err := st.evalAndStore(t); err != nil {
						st.setErr(err)
						closeDone.Do(func() { close(done) })
						return
					}
					mu.Lock()
					// A child may use t through several slots; count each
					// distinct child only once (mirrors the setup above).
					notified := map[*core.Term]bool{}
					for _, u := range t.Uses() {
						if notified[u] {
							continue
						}
						notified[u] = true
						pending[u]--
						if pending[u] == 0 {
							pending[u] = -1 // guard against double enqueue
							ready <- u
						}
					}
					remaining--
					if remaining == 0 {
						close(ready)
					}
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	return st.firstErr
}

// runBulkSynchronous executes the program kernel by kernel: the terms of each
// kernel are processed in waves of ready instructions with a barrier after
// every wave, which is how a statically parallelized kernel library behaves.
func runBulkSynchronous(st *runState, order []*core.Term, workers int) error {
	groups := groupByKernel(order)
	computed := make(map[*core.Term]bool, len(order))
	for _, group := range groups {
		remaining := append([]*core.Term(nil), group...)
		for len(remaining) > 0 {
			if err := st.stdctx.Err(); err != nil {
				return err
			}
			var wave, next []*core.Term
			for _, t := range remaining {
				ok := true
				for _, parm := range t.Parms() {
					if !computed[parm] {
						ok = false
						break
					}
				}
				if ok {
					wave = append(wave, t)
				} else {
					next = append(next, t)
				}
			}
			if len(wave) == 0 {
				return fmt.Errorf("execute: bulk-synchronous scheduler is stuck (cross-kernel dependency cycle)")
			}
			if err := parallelFor(wave, workers, func(t *core.Term) error {
				if err := st.stdctx.Err(); err != nil {
					return err
				}
				return st.evalAndStore(t)
			}); err != nil {
				return err
			}
			for _, t := range wave {
				computed[t] = true
			}
			remaining = next
		}
	}
	return st.firstErr
}

// groupByKernel splits the topologically ordered terms into maximal runs
// sharing the same kernel label; unlabeled terms attach to the current run.
func groupByKernel(order []*core.Term) [][]*core.Term {
	var groups [][]*core.Term
	var cur []*core.Term
	curLabel := ""
	for _, t := range order {
		label := t.Kernel
		if label == "" {
			label = curLabel
		}
		if label != curLabel && len(cur) > 0 {
			groups = append(groups, cur)
			cur = nil
		}
		curLabel = label
		cur = append(cur, t)
	}
	if len(cur) > 0 {
		groups = append(groups, cur)
	}
	return groups
}

func parallelFor(items []*core.Term, workers int, f func(*core.Term) error) error {
	if workers > len(items) {
		workers = len(items)
	}
	if workers <= 1 {
		for _, t := range items {
			if err := f(t); err != nil {
				return err
			}
		}
		return nil
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	work := make(chan *core.Term, len(items))
	for _, t := range items {
		work <- t
	}
	close(work)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range work {
				if err := f(t); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

func (st *runState) setErr(err error) {
	st.mu.Lock()
	if st.firstErr == nil {
		st.firstErr = err
	}
	st.mu.Unlock()
}

func (st *runState) valuePeek(t *core.Term) (*value, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	v, ok := st.values[t]
	return v, ok
}

// evalAndStore computes the value of t, stores it, and releases operand
// values whose last use this was (the executor's memory reuse).
func (st *runState) evalAndStore(t *core.Term) (err error) {
	// The backend assumes well-shaped operands; inputs from untrusted wire
	// formats are validated before they get here, but a panic in a worker
	// goroutine would otherwise kill the whole process, so convert any slip
	// into an ordinary execution error (defense in depth for evaserve).
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("execute: panic evaluating %s: %v", t, r)
		}
	}()
	start := time.Now()
	v, err := st.eval(t)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	st.mu.Lock()
	op := t.Op.String()
	os := st.stats.PerOp[op]
	if os == nil {
		os = &OpStats{}
		st.stats.PerOp[op] = os
	}
	os.observe(elapsed)
	st.values[t] = v
	vb := v.bytes()
	st.liveBytes += vb
	st.liveValues++
	if st.liveBytes > st.stats.PeakLiveBytes {
		st.stats.PeakLiveBytes = st.liveBytes
	}
	if st.liveValues > st.stats.PeakLiveValues {
		st.stats.PeakLiveValues = st.liveValues
	}
	if st.onInstr != nil {
		// Operand footprints must be read before the release loop below frees
		// last uses. Serialized under st.mu like Progress.
		rec := InstrRecord{
			Wall:     elapsed,
			Level:    -1,
			OutBytes: vb,
			Operands: len(t.Parms()),
			Hoisted:  st.hoist[t] != nil,
		}
		if v.ct != nil {
			rec.Cipher = true
			rec.Level = v.ct.Level
			rec.Scale = v.ct.Scale
		}
		for _, parm := range t.Parms() {
			rec.OperandBytes += st.values[parm].bytes()
		}
		st.onInstr(t, rec)
	}
	// Release operands whose uses are all satisfied: one refcount decrement
	// per (child, slot) use edge consumed by this instruction.
	for _, parm := range t.Parms() {
		st.refcounts[parm]--
		if st.refcounts[parm] == 0 {
			if old := st.values[parm]; old != nil {
				st.liveBytes -= old.bytes()
				st.liveValues--
				st.values[parm] = nil
				st.stats.ReusedValues++
			}
		}
	}
	st.completed++
	if st.onDone != nil {
		// Invoked under st.mu so calls are serialized and the (done, total)
		// pairs are monotone; the callback contract requires it to be fast.
		st.onDone(st.completed, st.total)
	}
	st.mu.Unlock()
	return nil
}

// operand returns the computed value of a parameter.
func (st *runState) operand(t *core.Term) (*value, error) {
	v, ok := st.valuePeek(t)
	if !ok || v == nil {
		return nil, fmt.Errorf("execute: operand %s not available (scheduling bug or released too early)", t)
	}
	return v, nil
}

// eval dispatches one instruction to the CKKS evaluator (for ciphertext
// values) or to plain vector arithmetic (for unencrypted values).
func (st *runState) eval(t *core.Term) (*value, error) {
	ev := st.ctx.Evaluator
	switch t.Op {
	case core.OpInput:
		if ct, ok := st.in.Cipher[t.Name]; ok {
			return &value{ct: ct}, nil
		}
		if pv, ok := st.in.Plain[t.Name]; ok {
			return &value{plain: pv}, nil
		}
		return nil, fmt.Errorf("execute: no value supplied for input %q", t.Name)
	case core.OpConstant:
		return &value{plain: Replicate(t.Value, st.vecSize)}, nil
	case core.OpNegate:
		a, err := st.operand(t.Parm(0))
		if err != nil {
			return nil, err
		}
		if a.ct == nil {
			return &value{plain: mapVec(a.plain, func(x float64) float64 { return -x })}, nil
		}
		ct, err := ev.Negate(a.ct)
		return &value{ct: ct}, err
	case core.OpAdd, core.OpSub, core.OpMultiply:
		return st.evalBinary(t)
	case core.OpRotateLeft, core.OpRotateRight:
		a, err := st.operand(t.Parm(0))
		if err != nil {
			return nil, err
		}
		k := t.RotateBy
		if t.Op == core.OpRotateRight {
			k = -k
		}
		if a.ct == nil {
			return &value{plain: rotate(a.plain, k)}, nil
		}
		if g := st.hoist[t]; g != nil {
			if ct, ok := st.hoistedRotation(g, t, a.ct); ok {
				return &value{ct: ct}, nil
			}
		}
		ct, err := ev.RotateLeft(a.ct, k)
		return &value{ct: ct}, err
	case core.OpRelinearize:
		a, err := st.operand(t.Parm(0))
		if err != nil {
			return nil, err
		}
		if a.ct == nil {
			return a, nil
		}
		ct, err := ev.Relinearize(a.ct)
		return &value{ct: ct}, err
	case core.OpModSwitch:
		a, err := st.operand(t.Parm(0))
		if err != nil {
			return nil, err
		}
		if a.ct == nil {
			return a, nil
		}
		ct, err := ev.ModSwitch(a.ct)
		return &value{ct: ct}, err
	case core.OpRescale:
		a, err := st.operand(t.Parm(0))
		if err != nil {
			return nil, err
		}
		if a.ct == nil {
			return a, nil
		}
		ct, err := ev.Rescale(a.ct)
		return &value{ct: ct}, err
	default:
		return nil, fmt.Errorf("execute: unsupported opcode %s", t.Op)
	}
}

func (st *runState) evalBinary(t *core.Term) (*value, error) {
	a, err := st.operand(t.Parm(0))
	if err != nil {
		return nil, err
	}
	b, err := st.operand(t.Parm(1))
	if err != nil {
		return nil, err
	}
	ev := st.ctx.Evaluator

	// Plain-plain folds to vector arithmetic.
	if a.ct == nil && b.ct == nil {
		var f func(x, y float64) float64
		switch t.Op {
		case core.OpAdd:
			f = func(x, y float64) float64 { return x + y }
		case core.OpSub:
			f = func(x, y float64) float64 { return x - y }
		default:
			f = func(x, y float64) float64 { return x * y }
		}
		return &value{plain: zipVec(a.plain, b.plain, f)}, nil
	}

	// Cipher-cipher uses the homomorphic evaluator directly.
	if a.ct != nil && b.ct != nil {
		var ct *ckks.Ciphertext
		switch t.Op {
		case core.OpAdd:
			ct, err = ev.Add(a.ct, b.ct)
		case core.OpSub:
			ct, err = ev.Sub(a.ct, b.ct)
		default:
			ct, err = ev.Mul(a.ct, b.ct)
		}
		return &value{ct: ct}, err
	}

	// Mixed cipher-plain: encode the plain operand at the ciphertext's level,
	// at the scale the compiler assigned to the plain term (for products) or
	// at the ciphertext's own scale (for sums, to satisfy Constraint 2 exactly).
	ct, plain, plainTerm, swapped := a.ct, b.plain, t.Parm(1), false
	if ct == nil {
		ct, plain, plainTerm, swapped = b.ct, a.plain, t.Parm(0), true
	}
	var scale float64
	if t.Op == core.OpMultiply {
		scale = math.Exp2(st.res.Scales[plainTerm])
	} else {
		scale = ct.Scale
	}
	pt, err := st.ctx.Encoder.Encode(plain, scale, ct.Level)
	if err != nil {
		return nil, fmt.Errorf("execute: encoding plain operand of %s: %w", t, err)
	}
	var out *ckks.Ciphertext
	switch t.Op {
	case core.OpAdd:
		out, err = ev.AddPlain(ct, pt)
	case core.OpMultiply:
		out, err = ev.MulPlain(ct, pt)
	case core.OpSub:
		if swapped {
			// plain - cipher = -(cipher) + plain.
			neg, nerr := ev.Negate(ct)
			if nerr != nil {
				return nil, nerr
			}
			out, err = ev.AddPlain(neg, pt)
		} else {
			out, err = ev.SubPlain(ct, pt)
		}
	}
	if err != nil {
		return nil, fmt.Errorf("execute: %s: %w", t, err)
	}
	return &value{ct: out}, nil
}
