package execute

import (
	"testing"

	"eva/internal/compile"
	"eva/internal/core"
)

// TestOnInstructionRecords checks the profiler hook: every scheduled term
// produces exactly one record, ciphertext results report a plausible post-op
// level/scale/footprint, operand footprints are read before release, and
// hoisted rotation members are flagged.
func TestOnInstructionRecords(t *testing.T) {
	p := buildRotationProgram(t, 8)
	res := compileForTest(t, p, compile.Options{})
	in := randomInputs(p, 13)

	maxLevel := len(res.Plan.BitSizes) - 1
	recs := map[*core.Term]InstrRecord{}
	_, out := runEncrypted(t, res, in, RunOptions{
		Scheduler: SchedulerSequential,
		OnInstruction: func(term *core.Term, rec InstrRecord) {
			if _, dup := recs[term]; dup {
				t.Errorf("term %s recorded twice", term)
			}
			recs[term] = rec
		},
	})
	total := len(res.Program.TopoSort())
	if len(recs) != total {
		t.Fatalf("recorded %d instructions, want %d", len(recs), total)
	}
	if out.Stats.HoistedBatches == 0 {
		t.Fatal("test program dispatched no hoisted batch; rotation fixture changed?")
	}
	hoisted := 0
	for term, rec := range recs {
		if rec.Wall < 0 {
			t.Errorf("%s: negative wall time %v", term, rec.Wall)
		}
		if rec.Operands != len(term.Parms()) {
			t.Errorf("%s: %d operands recorded, want %d", term, rec.Operands, len(term.Parms()))
		}
		if rec.Cipher {
			if rec.Level < 0 || rec.Level > maxLevel {
				t.Errorf("%s: level %d outside chain [0,%d]", term, rec.Level, maxLevel)
			}
			if !(rec.Scale > 0) {
				t.Errorf("%s: non-positive scale %v", term, rec.Scale)
			}
			if rec.OutBytes <= 0 {
				t.Errorf("%s: cipher result with %d bytes", term, rec.OutBytes)
			}
		} else if rec.Level != -1 {
			t.Errorf("%s: plain result reports level %d, want -1", term, rec.Level)
		}
		if len(term.Parms()) > 0 && rec.OperandBytes <= 0 {
			t.Errorf("%s: operand bytes %d, want > 0 (read after release?)", term, rec.OperandBytes)
		}
		if rec.Hoisted {
			hoisted++
			if !term.Op.IsRotation() {
				t.Errorf("%s: non-rotation flagged hoisted", term)
			}
		}
	}
	if hoisted != out.Stats.HoistedRotations {
		t.Errorf("%d records flagged hoisted, want %d", hoisted, out.Stats.HoistedRotations)
	}
}
