package execute

import (
	"math"
	"math/rand"
	"testing"

	"eva/internal/ckks"
	"eva/internal/compile"
	"eva/internal/core"
	"eva/internal/rewrite"
)

// buildPolynomialProgram builds x²y³ + x - y over vectors of the given size.
func buildPolynomialProgram(t testing.TB, vecSize int) *core.Program {
	t.Helper()
	p := core.MustNewProgram("poly", vecSize)
	x, _ := p.NewInput("x", core.TypeCipher, vecSize, 40)
	y, _ := p.NewInput("y", core.TypeCipher, vecSize, 40)
	x2, _ := p.NewBinary(core.OpMultiply, x, x)
	y2, _ := p.NewBinary(core.OpMultiply, y, y)
	y3, _ := p.NewBinary(core.OpMultiply, y2, y)
	xy, _ := p.NewBinary(core.OpMultiply, x2, y3)
	s1, _ := p.NewBinary(core.OpAdd, xy, x)
	s2, _ := p.NewBinary(core.OpSub, s1, y)
	if err := p.AddOutput("out", s2, 40); err != nil {
		t.Fatal(err)
	}
	return p
}

// buildRotationProgram computes a running sum of 4 neighbours scaled by a
// plaintext mask, exercising rotations, plaintext vectors and constants.
func buildRotationProgram(t testing.TB, vecSize int) *core.Program {
	t.Helper()
	p := core.MustNewProgram("rotsum", vecSize)
	x, _ := p.NewInput("x", core.TypeCipher, vecSize, 40)
	mask, _ := p.NewInput("mask", core.TypeVector, vecSize, 20)
	half, _ := p.NewScalarConstant(0.5, 20)
	var acc *core.Term
	for k := 0; k < 4; k++ {
		rot, _ := p.NewRotation(core.OpRotateLeft, x, k)
		if acc == nil {
			acc = rot
			continue
		}
		sum, _ := p.NewBinary(core.OpAdd, acc, rot)
		acc = sum
	}
	masked, _ := p.NewBinary(core.OpMultiply, acc, mask)
	scaled, _ := p.NewBinary(core.OpMultiply, masked, half)
	neg, _ := p.NewUnary(core.OpNegate, scaled)
	rr, _ := p.NewRotation(core.OpRotateRight, scaled, 2)
	if err := p.AddOutput("out", scaled, 40); err != nil {
		t.Fatal(err)
	}
	if err := p.AddOutput("neg", neg, 40); err != nil {
		t.Fatal(err)
	}
	if err := p.AddOutput("shifted", rr, 40); err != nil {
		t.Fatal(err)
	}
	return p
}

func randomInputs(p *core.Program, seed int64) Inputs {
	rng := rand.New(rand.NewSource(seed))
	in := Inputs{}
	for _, t := range p.Inputs() {
		v := make([]float64, t.VecWidth)
		for i := range v {
			v[i] = rng.Float64()*2 - 1
		}
		in[t.Name] = v
	}
	return in
}

func compileForTest(t testing.TB, p *core.Program, opts compile.Options) *compile.Result {
	t.Helper()
	opts.AllowInsecure = true
	res, err := compile.Compile(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// runEncrypted compiles, generates keys, encrypts, executes and decrypts.
func runEncrypted(t testing.TB, res *compile.Result, in Inputs, ropts RunOptions) (map[string][]float64, *Outputs) {
	t.Helper()
	prng := ckks.NewTestPRNG(7)
	ctx, keys, err := NewContext(res, prng)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := EncryptInputs(ctx, res, keys, in, prng)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Run(ctx, res, enc, ropts)
	if err != nil {
		t.Fatal(err)
	}
	dec, _ := DecryptOutputs(ctx, res, keys, out)
	return dec, out
}

func requireMatch(t testing.TB, got, want map[string][]float64, tol float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("output count %d, want %d", len(got), len(want))
	}
	for name, w := range want {
		g, ok := got[name]
		if !ok {
			t.Fatalf("missing output %q", name)
		}
		for i := range w {
			if math.Abs(g[i]-w[i]) > tol {
				t.Fatalf("output %q slot %d: got %g want %g (err %g)", name, i, g[i], w[i], math.Abs(g[i]-w[i]))
			}
		}
	}
}

func TestReferenceExecutor(t *testing.T) {
	p := buildRotationProgram(t, 8)
	in := Inputs{
		"x":    []float64{1, 2, 3, 4, 5, 6, 7, 8},
		"mask": []float64{1, 0, 1, 0, 1, 0, 1, 0},
	}
	out, err := RunReference(p, in)
	if err != nil {
		t.Fatal(err)
	}
	// Slot 0 of the rotation sum: (1+2+3+4)*1*0.5 = 5.
	if math.Abs(out["out"][0]-5) > 1e-12 {
		t.Errorf("out[0] = %g, want 5", out["out"][0])
	}
	if math.Abs(out["neg"][0]+5) > 1e-12 {
		t.Errorf("neg[0] = %g, want -5", out["neg"][0])
	}
	// shifted = rotate right by 2 of out: shifted[2] == out[0].
	if math.Abs(out["shifted"][2]-out["out"][0]) > 1e-12 {
		t.Errorf("shifted[2] = %g, want %g", out["shifted"][2], out["out"][0])
	}
	// Missing and malformed inputs are rejected.
	if _, err := RunReference(p, Inputs{"x": in["x"]}); err == nil {
		t.Error("expected error for missing input")
	}
	if _, err := RunReference(p, Inputs{"x": make([]float64, 16), "mask": in["mask"]}); err == nil {
		t.Error("expected error for oversized input")
	}
}

func TestEncryptedExecutionMatchesReferencePolynomial(t *testing.T) {
	p := buildPolynomialProgram(t, 8)
	in := randomInputs(p, 1)
	want, err := RunReference(p, in)
	if err != nil {
		t.Fatal(err)
	}
	res := compileForTest(t, p, compile.DefaultOptions())
	got, outs := runEncrypted(t, res, in, RunOptions{Scheduler: SchedulerParallel})
	requireMatch(t, got, want, 1e-3)
	if outs.Stats.Instructions == 0 || outs.Stats.WallTime <= 0 {
		t.Error("missing run statistics")
	}
	if outs.Stats.ReusedValues == 0 {
		t.Error("expected the executor to reuse memory of retired values")
	}
}

func TestEncryptedExecutionMatchesReferenceRotations(t *testing.T) {
	p := buildRotationProgram(t, 16)
	in := randomInputs(p, 2)
	want, err := RunReference(p, in)
	if err != nil {
		t.Fatal(err)
	}
	res := compileForTest(t, p, compile.DefaultOptions())
	if len(res.RotationSteps) == 0 {
		t.Fatal("expected rotation steps to be selected")
	}
	got, _ := runEncrypted(t, res, in, RunOptions{Scheduler: SchedulerParallel})
	requireMatch(t, got, want, 1e-3)
}

func TestSchedulersProduceSameResults(t *testing.T) {
	p := buildPolynomialProgram(t, 8)
	in := randomInputs(p, 3)
	want, err := RunReference(p, in)
	if err != nil {
		t.Fatal(err)
	}
	res := compileForTest(t, p, compile.DefaultOptions())
	for _, sched := range []Scheduler{SchedulerParallel, SchedulerBulkSynchronous, SchedulerSequential} {
		got, _ := runEncrypted(t, res, in, RunOptions{Scheduler: sched, Workers: 4})
		requireMatch(t, got, want, 1e-3)
	}
}

func TestChetStyleCompilationExecutes(t *testing.T) {
	// The CHET baseline pipeline (always-rescale + lazy modswitch) must also
	// produce valid, runnable programs.
	p := buildPolynomialProgram(t, 8)
	in := randomInputs(p, 4)
	want, err := RunReference(p, in)
	if err != nil {
		t.Fatal(err)
	}
	res := compileForTest(t, p, compile.Options{
		MaxRescaleLog: 60,
		Rescale:       rewrite.RescaleAlways,
		ModSwitch:     rewrite.ModSwitchLazy,
	})
	got, _ := runEncrypted(t, res, in, RunOptions{Scheduler: SchedulerBulkSynchronous})
	requireMatch(t, got, want, 1e-3)
}

func TestPlainOnlyOutputs(t *testing.T) {
	// A program whose output never touches a Cipher input stays unencrypted.
	p := core.MustNewProgram("plain", 8)
	v, _ := p.NewInput("v", core.TypeVector, 8, 30)
	c, _ := p.NewScalarConstant(3, 30)
	vc, _ := p.NewBinary(core.OpMultiply, v, c)
	x, _ := p.NewInput("x", core.TypeCipher, 8, 30)
	xc, _ := p.NewBinary(core.OpMultiply, x, c)
	p.AddOutput("plain_out", vc, 30)
	p.AddOutput("cipher_out", xc, 30)

	in := Inputs{"v": {1, 2, 3, 4, 5, 6, 7, 8}, "x": {1, 1, 1, 1, 1, 1, 1, 1}}
	want, err := RunReference(p, in)
	if err != nil {
		t.Fatal(err)
	}
	res := compileForTest(t, p, compile.DefaultOptions())
	got, outs := runEncrypted(t, res, in, RunOptions{})
	requireMatch(t, got, want, 1e-3)
	if len(outs.Plain) != 1 || len(outs.Cipher) != 1 {
		t.Errorf("expected one plain and one cipher output, got %d/%d", len(outs.Plain), len(outs.Cipher))
	}
}

func TestEncryptInputsErrors(t *testing.T) {
	p := buildPolynomialProgram(t, 8)
	res := compileForTest(t, p, compile.DefaultOptions())
	prng := ckks.NewTestPRNG(9)
	ctx, keys, err := NewContext(res, prng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EncryptInputs(ctx, res, keys, Inputs{"x": {1}}, prng); err == nil {
		t.Error("expected error for missing input")
	}
	if _, err := EncryptInputs(ctx, res, keys, Inputs{"x": make([]float64, 99), "y": {1}}, prng); err == nil {
		t.Error("expected error for oversized input")
	}
}

func TestRunMissingInputValue(t *testing.T) {
	p := buildPolynomialProgram(t, 8)
	res := compileForTest(t, p, compile.DefaultOptions())
	prng := ckks.NewTestPRNG(10)
	ctx, _, err := NewContext(res, prng)
	if err != nil {
		t.Fatal(err)
	}
	empty := &EncryptedInputs{Cipher: map[string]*ckks.Ciphertext{}, Plain: map[string][]float64{}}
	if _, err := Run(ctx, res, empty, RunOptions{}); err == nil {
		t.Error("expected error when input values are missing")
	}
}

func TestCompileSummaryAndPlan(t *testing.T) {
	p := buildPolynomialProgram(t, 8)
	res := compileForTest(t, p, compile.DefaultOptions())
	if res.Summary() == "" {
		t.Error("empty compile summary")
	}
	if res.Plan.NumPrimes() < 2 {
		t.Errorf("suspicious prime count %d", res.Plan.NumPrimes())
	}
	if res.Plan.LogQP() <= res.Plan.LogQ() {
		t.Error("LogQP should include the special prime")
	}
	if got := res.InputScales(); got["x"] != 40 || got["y"] != 40 {
		t.Errorf("input scales = %v", got)
	}
	lit := res.ParametersLiteral()
	if len(lit.LogQi) != len(res.Plan.BitSizes) {
		t.Error("parameter literal chain length mismatch")
	}
	// Consumption order is reversed into the backend's chain order.
	if lit.LogQi[len(lit.LogQi)-1] != res.Plan.BitSizes[0] {
		t.Error("parameter literal ordering wrong")
	}
}
