package execute

import (
	"strings"
	"testing"

	"eva/internal/ckks"
	"eva/internal/compile"
	"eva/internal/core"
	"eva/internal/rewrite"
)

// These tests inject compiler misconfigurations and runtime faults and check
// that the executor surfaces clean errors — the failure modes EVA's
// validation exists to prevent from ever reaching the FHE library.

// compileSkippingPasses compiles while disabling parts of the pipeline so the
// resulting program violates scheme constraints at run time.
func compileSkippingPasses(t *testing.T, p *core.Program, tweak func(*rewrite.Options)) *compile.Result {
	t.Helper()
	// Bypass compile.Compile (whose validation would reject the program) and
	// build the pieces by hand, mirroring what a buggy compiler would do.
	prog := p.Clone()
	opts := rewrite.DefaultOptions()
	tweak(&opts)
	if err := rewrite.Transform(prog, opts); err != nil {
		t.Fatal(err)
	}
	full := compile.DefaultOptions()
	full.AllowInsecure = true
	good, err := compile.Compile(p, full)
	if err != nil {
		t.Fatal(err)
	}
	// Swap in the under-transformed program while keeping the (valid)
	// parameter plan, so execution reaches the backend and fails there.
	bad := *good
	bad.Program = prog
	bad.Scales = rewrite.ComputeLogScales(prog)
	return &bad
}

func TestRunSurfacesMissingRelinearization(t *testing.T) {
	p := buildPolynomialProgram(t, 8)
	res := compileSkippingPasses(t, p, func(o *rewrite.Options) { o.SkipRelinearize = true })
	prng := ckks.NewTestPRNG(1)
	ctx, keys, err := NewContext(res, prng)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := EncryptInputs(ctx, res, keys, randomInputs(p, 1), prng)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(ctx, res, enc, RunOptions{})
	if err == nil {
		t.Fatal("expected a runtime error for multiplying unrelinearized ciphertexts")
	}
	if !strings.Contains(err.Error(), "degree") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestRunSurfacesMissingModSwitch(t *testing.T) {
	p := buildPolynomialProgram(t, 8)
	res := compileSkippingPasses(t, p, func(o *rewrite.Options) { o.ModSwitch = rewrite.ModSwitchNone })
	prng := ckks.NewTestPRNG(2)
	ctx, keys, err := NewContext(res, prng)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := EncryptInputs(ctx, res, keys, randomInputs(p, 2), prng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(ctx, res, enc, RunOptions{}); err == nil {
		t.Fatal("expected a runtime error for operating on mismatched levels")
	}
}

func TestRunSurfacesMissingRotationKey(t *testing.T) {
	p := buildRotationProgram(t, 16)
	opts := compile.DefaultOptions()
	opts.AllowInsecure = true
	res, err := compile.Compile(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Drop the rotation steps so no Galois keys are generated.
	res.RotationSteps = nil
	prng := ckks.NewTestPRNG(3)
	ctx, keys, err := NewContext(res, prng)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := EncryptInputs(ctx, res, keys, randomInputs(p, 3), prng)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(ctx, res, enc, RunOptions{})
	if err == nil {
		t.Fatal("expected a runtime error for a missing rotation key")
	}
	if !strings.Contains(err.Error(), "rotation") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestValidationPreventsTheInjectedFailures(t *testing.T) {
	// The same misconfigurations are caught at compile time when the full
	// pipeline is used: Compile refuses to emit the invalid programs that the
	// tests above had to construct by hand.
	p := buildPolynomialProgram(t, 8)
	good, err := compile.Compile(p, compile.Options{MaxRescaleLog: 60, AllowInsecure: true})
	if err != nil {
		t.Fatalf("valid pipeline rejected: %v", err)
	}
	if good.CompiledStats.Instructions["RELINEARIZE"] == 0 {
		t.Error("expected relinearization instructions in the compiled program")
	}
}

func TestGroupByKernelPreservesOrder(t *testing.T) {
	p := core.MustNewProgram("kernels", 8)
	x, _ := p.NewInput("x", core.TypeCipher, 8, 30)
	a, _ := p.NewUnary(core.OpNegate, x)
	a.Kernel = "k1"
	b, _ := p.NewUnary(core.OpNegate, a)
	b.Kernel = "k1"
	c, _ := p.NewBinary(core.OpAdd, b, x)
	c.Kernel = "k2"
	p.AddOutput("out", c, 30)
	groups := groupByKernel(p.TopoSort())
	if len(groups) < 2 {
		t.Fatalf("expected at least 2 kernel groups, got %d", len(groups))
	}
	// Flattening the groups must preserve the topological order.
	var flat []*core.Term
	for _, g := range groups {
		flat = append(flat, g...)
	}
	pos := map[*core.Term]int{}
	for i, term := range flat {
		pos[term] = i
	}
	for _, term := range flat {
		for _, parm := range term.Parms() {
			if pos[parm] >= pos[term] {
				t.Fatal("kernel grouping broke the topological order")
			}
		}
	}
}
