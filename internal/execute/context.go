// Package execute runs compiled EVA programs. It provides the reference
// executor (the paper's "id scheme" semantics, used for testing and as the
// unencrypted baseline), the CKKS executor that drives the homomorphic
// backend, and two schedulers: the asynchronous DAG-parallel scheduler that
// EVA uses, and a bulk-synchronous per-kernel scheduler modeling the CHET
// baseline's intra-kernel parallelism.
package execute

import (
	"fmt"
	"math"
	"time"

	"eva/internal/ckks"
	"eva/internal/compile"
	"eva/internal/core"
)

// Context bundles the CKKS backend objects needed to execute a compiled
// program: parameters, the encoder, and an evaluator armed with the public
// evaluation keys. Encryption and decryption additionally need the key pair,
// which the helper functions below manage.
type Context struct {
	Params    *ckks.Parameters
	Encoder   *ckks.Encoder
	Evaluator *ckks.Evaluator

	// KeyGenTime records how long key material took to generate (the paper's
	// "encryption context" time in Table 7).
	KeyGenTime time.Duration
}

// KeyMaterial is the full key set produced for a compiled program.
type KeyMaterial struct {
	Secret *ckks.SecretKey
	Public *ckks.PublicKey
	Relin  *ckks.RelinearizationKey
	Rot    *ckks.RotationKeySet
}

// NewContext generates the encryption context for a compiled program: the
// concrete encryption parameters, the key pair, the relinearization key, and
// one Galois key per rotation step the compiler selected. prng may be nil for
// a securely seeded default.
func NewContext(res *compile.Result, prng *ckks.PRNG) (*Context, *KeyMaterial, error) {
	start := time.Now()
	params, err := ckks.NewParameters(res.ParametersLiteral())
	if err != nil {
		return nil, nil, fmt.Errorf("execute: building parameters: %w", err)
	}
	kg := ckks.NewKeyGenerator(params, prng)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	rlk, err := kg.GenRelinearizationKey(sk)
	if err != nil {
		return nil, nil, fmt.Errorf("execute: relinearization key: %w", err)
	}
	var rtk *ckks.RotationKeySet
	if len(res.RotationSteps) > 0 {
		rtk, err = kg.GenRotationKeys(res.RotationSteps, sk)
		if err != nil {
			return nil, nil, fmt.Errorf("execute: rotation keys: %w", err)
		}
	}
	ctx := &Context{
		Params:     params,
		Encoder:    ckks.NewEncoder(params),
		Evaluator:  ckks.NewEvaluator(params, ckks.EvaluationKeys{Rlk: rlk, Rtk: rtk}),
		KeyGenTime: time.Since(start),
	}
	return ctx, &KeyMaterial{Secret: sk, Public: pk, Relin: rlk, Rot: rtk}, nil
}

// NewEvaluationContext builds the server-side execution context from public
// evaluation keys supplied by a client, without ever seeing the secret key —
// the paper's deployment model, in which the client generates all key
// material locally and ships only the relinearization and rotation keys to
// the untrusted server. rtk may be nil when the compiled program performs no
// rotations, and rlk may be nil when it never relinearizes.
func NewEvaluationContext(res *compile.Result, rlk *ckks.RelinearizationKey, rtk *ckks.RotationKeySet) (*Context, error) {
	params, err := ckks.NewParameters(res.ParametersLiteral())
	if err != nil {
		return nil, fmt.Errorf("execute: building parameters: %w", err)
	}
	if len(res.RotationSteps) > 0 {
		if rtk == nil {
			return nil, fmt.Errorf("execute: program needs rotation keys for steps %v but none were supplied", res.RotationSteps)
		}
		// Check completeness and shape now so a bad key upload fails at
		// context creation rather than on every execution.
		for _, step := range res.RotationSteps {
			swk := rtk.Keys[params.GaloisElementForRotation(step)]
			if swk == nil {
				return nil, fmt.Errorf("execute: missing rotation key for step %d (Galois element %d)", step, params.GaloisElementForRotation(step))
			}
			if err := swk.Validate(params); err != nil {
				return nil, fmt.Errorf("execute: rotation key for step %d: %w", step, err)
			}
		}
	}
	if res.CompiledStats.Instructions[core.OpRelinearize.String()] > 0 && rlk == nil {
		return nil, fmt.Errorf("execute: program relinearizes but no relinearization key was supplied")
	}
	if rlk != nil {
		if rlk.Key == nil {
			return nil, fmt.Errorf("execute: relinearization key is empty")
		}
		if err := rlk.Key.Validate(params); err != nil {
			return nil, fmt.Errorf("execute: relinearization key: %w", err)
		}
	}
	return &Context{
		Params:    params,
		Encoder:   ckks.NewEncoder(params),
		Evaluator: ckks.NewEvaluator(params, ckks.EvaluationKeys{Rlk: rlk, Rtk: rtk}),
	}, nil
}

// Inputs maps program input names to their run-time values. Every value is a
// vector of at most the program's vector size (shorter power-of-two vectors
// are replicated, scalars may be given as single-element slices).
type Inputs map[string][]float64

// EncryptedInputs holds the client-side encrypted (or encoded) inputs.
type EncryptedInputs struct {
	Cipher map[string]*ckks.Ciphertext
	Plain  map[string][]float64

	EncryptTime time.Duration
}

// EncryptInputs encodes and encrypts the Cipher inputs of the program at
// their compiled scales and leaves plain inputs as vectors, mirroring the
// client-side step of the EVA workflow.
func EncryptInputs(ctx *Context, res *compile.Result, keys *KeyMaterial, values Inputs, prng *ckks.PRNG) (*EncryptedInputs, error) {
	start := time.Now()
	enc := ckks.NewEncryptor(ctx.Params, keys.Public, prng)
	out := &EncryptedInputs{Cipher: map[string]*ckks.Ciphertext{}, Plain: map[string][]float64{}}
	for _, in := range res.Program.Inputs() {
		v, ok := values[in.Name]
		if !ok {
			return nil, fmt.Errorf("execute: missing value for input %q", in.Name)
		}
		if len(v) == 0 || len(v) > res.Program.VecSize {
			return nil, fmt.Errorf("execute: input %q has %d values; want 1..%d", in.Name, len(v), res.Program.VecSize)
		}
		if in.InType == core.TypeCipher {
			pt, err := ctx.Encoder.Encode(v, math.Exp2(in.LogScale), ctx.Params.MaxLevel())
			if err != nil {
				return nil, fmt.Errorf("execute: encoding input %q: %w", in.Name, err)
			}
			ct, err := enc.Encrypt(pt)
			if err != nil {
				return nil, fmt.Errorf("execute: encrypting input %q: %w", in.Name, err)
			}
			out.Cipher[in.Name] = ct
		} else {
			full, err := PreparePlain(res, in.Name, v)
			if err != nil {
				return nil, err
			}
			out.Plain[in.Name] = full
		}
	}
	out.EncryptTime = time.Since(start)
	return out, nil
}

// EncryptSelected encodes and encrypts a subset of the program's Cipher
// inputs at their compiled scales. Unlike EncryptInputs it does not demand
// every input: servers resolving mixed batches (some inputs arriving as
// stored ciphertext handles, some as plaintext values) encrypt only the
// plaintext remainder. Every name must be a Cipher input of the program.
func EncryptSelected(ctx *Context, res *compile.Result, keys *KeyMaterial, values Inputs, prng *ckks.PRNG) (map[string]*ckks.Ciphertext, time.Duration, error) {
	start := time.Now()
	enc := ckks.NewEncryptor(ctx.Params, keys.Public, prng)
	out := make(map[string]*ckks.Ciphertext, len(values))
	for name, v := range values {
		in := res.Program.InputByName(name)
		if in == nil || in.InType != core.TypeCipher {
			return nil, 0, fmt.Errorf("execute: %q is not a Cipher input of the program", name)
		}
		if len(v) == 0 || len(v) > res.Program.VecSize {
			return nil, 0, fmt.Errorf("execute: input %q has %d values; want 1..%d", name, len(v), res.Program.VecSize)
		}
		pt, err := ctx.Encoder.Encode(v, math.Exp2(in.LogScale), ctx.Params.MaxLevel())
		if err != nil {
			return nil, 0, fmt.Errorf("execute: encoding input %q: %w", name, err)
		}
		ct, err := enc.Encrypt(pt)
		if err != nil {
			return nil, 0, fmt.Errorf("execute: encrypting input %q: %w", name, err)
		}
		out[name] = ct
	}
	return out, time.Since(start), nil
}

// Outputs holds the encrypted results of an execution plus any outputs that
// turned out to be unencrypted (programs whose outputs do not depend on any
// Cipher input), and execution statistics.
type Outputs struct {
	Cipher map[string]*ckks.Ciphertext
	Plain  map[string][]float64
	Stats  RunStats
}

// OpLatencyBounds are the upper bounds (inclusive) of the per-opcode latency
// histogram buckets in RunStats.PerOp. A sample larger than the last bound
// lands in the overflow bucket, so a histogram has len(OpLatencyBounds)+1
// buckets. The bounds span microseconds (element-wise ops on small rings) to
// seconds (key switching on paper-scale rings).
var OpLatencyBounds = []time.Duration{
	time.Microsecond,
	10 * time.Microsecond,
	100 * time.Microsecond,
	time.Millisecond,
	10 * time.Millisecond,
	100 * time.Millisecond,
	time.Second,
}

// OpStats aggregates the latency of every instruction with one opcode during
// an execution: a count, a total (Total/Count is the mean), the slowest
// sample, and a histogram bucketed by OpLatencyBounds.
type OpStats struct {
	Count   int
	Total   time.Duration
	Max     time.Duration
	Buckets []int
}

func (s *OpStats) observe(d time.Duration) {
	if s.Buckets == nil {
		s.Buckets = make([]int, len(OpLatencyBounds)+1)
	}
	s.Count++
	s.Total += d
	if d > s.Max {
		s.Max = d
	}
	i := 0
	for i < len(OpLatencyBounds) && d > OpLatencyBounds[i] {
		i++
	}
	s.Buckets[i]++
}

// Merge folds another aggregate into s (used to combine the statistics of
// many executions, e.g. by the evaserve /metrics endpoint).
func (s *OpStats) Merge(o *OpStats) {
	if o == nil || o.Count == 0 {
		return
	}
	if s.Buckets == nil {
		s.Buckets = make([]int, len(OpLatencyBounds)+1)
	}
	s.Count += o.Count
	s.Total += o.Total
	if o.Max > s.Max {
		s.Max = o.Max
	}
	for i := range o.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
}

// RunStats reports scheduler statistics for one execution.
type RunStats struct {
	Instructions   int
	Workers        int
	WallTime       time.Duration
	PeakLiveValues int
	PeakLiveBytes  int
	ReusedValues   int

	// HoistedBatches counts the hoisted rotation batches dispatched by this
	// run, and HoistedRotations the distinct rotation steps they covered —
	// each batch shares one RNS digit decomposition across all its steps.
	HoistedBatches   int
	HoistedRotations int

	// PerOp maps each executed opcode to its aggregated instruction
	// latencies. Leaf pseudo-instructions (INPUT, CONSTANT) are included so
	// the totals account for every scheduled term.
	PerOp map[string]*OpStats
}

// DecryptOutputs decrypts and decodes every encrypted output, truncating each
// result to the program's vector size.
func DecryptOutputs(ctx *Context, res *compile.Result, keys *KeyMaterial, outputs *Outputs) (map[string][]float64, time.Duration) {
	start := time.Now()
	dec := ckks.NewDecryptor(ctx.Params, keys.Secret)
	out := make(map[string][]float64, len(outputs.Cipher)+len(outputs.Plain))
	for name, ct := range outputs.Cipher {
		values := ctx.Encoder.Decode(dec.Decrypt(ct))
		out[name] = values[:min(res.Program.VecSize, len(values))]
	}
	for name, v := range outputs.Plain {
		out[name] = v[:min(res.Program.VecSize, len(v))]
	}
	return out, time.Since(start)
}

// PreparePlain validates a plain input vector for a compiled program and
// replicates it to the full vector size — the same semantics EncryptInputs
// applies, exported so servers decoding wire-format inputs don't duplicate
// them.
func PreparePlain(res *compile.Result, name string, v []float64) ([]float64, error) {
	if len(v) == 0 || len(v) > res.Program.VecSize {
		return nil, fmt.Errorf("execute: input %q has %d values; want 1..%d", name, len(v), res.Program.VecSize)
	}
	return Replicate(v, res.Program.VecSize), nil
}

// Replicate tiles a vector to the given size: out[i] = v[i mod len(v)]. This
// is the executor's input-widening rule (inputs, constants, and plain wire
// inputs all widen this way); internal/coalesce packs callers into slot
// ranges with the same formula so a packed range carries exactly the
// cleartext an unbatched run would.
func Replicate(v []float64, size int) []float64 {
	out := make([]float64, size)
	for i := range out {
		out[i] = v[i%len(v)]
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
