// Package execute runs compiled EVA programs. It provides the reference
// executor (the paper's "id scheme" semantics, used for testing and as the
// unencrypted baseline), the CKKS executor that drives the homomorphic
// backend, and two schedulers: the asynchronous DAG-parallel scheduler that
// EVA uses, and a bulk-synchronous per-kernel scheduler modeling the CHET
// baseline's intra-kernel parallelism.
package execute

import (
	"fmt"
	"math"
	"time"

	"eva/internal/ckks"
	"eva/internal/compile"
	"eva/internal/core"
)

// Context bundles the CKKS backend objects needed to execute a compiled
// program: parameters, the encoder, and an evaluator armed with the public
// evaluation keys. Encryption and decryption additionally need the key pair,
// which the helper functions below manage.
type Context struct {
	Params    *ckks.Parameters
	Encoder   *ckks.Encoder
	Evaluator *ckks.Evaluator

	// KeyGenTime records how long key material took to generate (the paper's
	// "encryption context" time in Table 7).
	KeyGenTime time.Duration
}

// KeyMaterial is the full key set produced for a compiled program.
type KeyMaterial struct {
	Secret *ckks.SecretKey
	Public *ckks.PublicKey
	Relin  *ckks.RelinearizationKey
	Rot    *ckks.RotationKeySet
}

// NewContext generates the encryption context for a compiled program: the
// concrete encryption parameters, the key pair, the relinearization key, and
// one Galois key per rotation step the compiler selected. prng may be nil for
// a securely seeded default.
func NewContext(res *compile.Result, prng *ckks.PRNG) (*Context, *KeyMaterial, error) {
	start := time.Now()
	params, err := ckks.NewParameters(res.ParametersLiteral())
	if err != nil {
		return nil, nil, fmt.Errorf("execute: building parameters: %w", err)
	}
	kg := ckks.NewKeyGenerator(params, prng)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	rlk, err := kg.GenRelinearizationKey(sk)
	if err != nil {
		return nil, nil, fmt.Errorf("execute: relinearization key: %w", err)
	}
	var rtk *ckks.RotationKeySet
	if len(res.RotationSteps) > 0 {
		rtk, err = kg.GenRotationKeys(res.RotationSteps, sk)
		if err != nil {
			return nil, nil, fmt.Errorf("execute: rotation keys: %w", err)
		}
	}
	ctx := &Context{
		Params:     params,
		Encoder:    ckks.NewEncoder(params),
		Evaluator:  ckks.NewEvaluator(params, ckks.EvaluationKeys{Rlk: rlk, Rtk: rtk}),
		KeyGenTime: time.Since(start),
	}
	return ctx, &KeyMaterial{Secret: sk, Public: pk, Relin: rlk, Rot: rtk}, nil
}

// Inputs maps program input names to their run-time values. Every value is a
// vector of at most the program's vector size (shorter power-of-two vectors
// are replicated, scalars may be given as single-element slices).
type Inputs map[string][]float64

// EncryptedInputs holds the client-side encrypted (or encoded) inputs.
type EncryptedInputs struct {
	Cipher map[string]*ckks.Ciphertext
	Plain  map[string][]float64

	EncryptTime time.Duration
}

// EncryptInputs encodes and encrypts the Cipher inputs of the program at
// their compiled scales and leaves plain inputs as vectors, mirroring the
// client-side step of the EVA workflow.
func EncryptInputs(ctx *Context, res *compile.Result, keys *KeyMaterial, values Inputs, prng *ckks.PRNG) (*EncryptedInputs, error) {
	start := time.Now()
	enc := ckks.NewEncryptor(ctx.Params, keys.Public, prng)
	out := &EncryptedInputs{Cipher: map[string]*ckks.Ciphertext{}, Plain: map[string][]float64{}}
	for _, in := range res.Program.Inputs() {
		v, ok := values[in.Name]
		if !ok {
			return nil, fmt.Errorf("execute: missing value for input %q", in.Name)
		}
		if len(v) == 0 || len(v) > res.Program.VecSize {
			return nil, fmt.Errorf("execute: input %q has %d values; want 1..%d", in.Name, len(v), res.Program.VecSize)
		}
		if in.InType == core.TypeCipher {
			pt, err := ctx.Encoder.Encode(v, math.Exp2(in.LogScale), ctx.Params.MaxLevel())
			if err != nil {
				return nil, fmt.Errorf("execute: encoding input %q: %w", in.Name, err)
			}
			ct, err := enc.Encrypt(pt)
			if err != nil {
				return nil, fmt.Errorf("execute: encrypting input %q: %w", in.Name, err)
			}
			out.Cipher[in.Name] = ct
		} else {
			out.Plain[in.Name] = replicate(v, res.Program.VecSize)
		}
	}
	out.EncryptTime = time.Since(start)
	return out, nil
}

// Outputs holds the encrypted results of an execution plus any outputs that
// turned out to be unencrypted (programs whose outputs do not depend on any
// Cipher input), and execution statistics.
type Outputs struct {
	Cipher map[string]*ckks.Ciphertext
	Plain  map[string][]float64
	Stats  RunStats
}

// RunStats reports scheduler statistics for one execution.
type RunStats struct {
	Instructions   int
	Workers        int
	WallTime       time.Duration
	PeakLiveValues int
	PeakLiveBytes  int
	ReusedValues   int
}

// DecryptOutputs decrypts and decodes every encrypted output, truncating each
// result to the program's vector size.
func DecryptOutputs(ctx *Context, res *compile.Result, keys *KeyMaterial, outputs *Outputs) (map[string][]float64, time.Duration) {
	start := time.Now()
	dec := ckks.NewDecryptor(ctx.Params, keys.Secret)
	out := make(map[string][]float64, len(outputs.Cipher)+len(outputs.Plain))
	for name, ct := range outputs.Cipher {
		values := ctx.Encoder.Decode(dec.Decrypt(ct))
		out[name] = values[:min(res.Program.VecSize, len(values))]
	}
	for name, v := range outputs.Plain {
		out[name] = v[:min(res.Program.VecSize, len(v))]
	}
	return out, time.Since(start)
}

func replicate(v []float64, size int) []float64 {
	out := make([]float64, size)
	for i := range out {
		out[i] = v[i%len(v)]
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
