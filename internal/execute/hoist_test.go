package execute

import (
	"sync"
	"testing"

	"eva/internal/compile"
)

// TestHoistedRotationDispatch checks that the executor dispatches a shared-
// source rotation group as one hoisted batch (visible in RunStats and through
// the OnHoistedBatch callback), that disabling hoisting suppresses it, and
// that both paths decrypt to identical values — hoisting is bit-exact, so
// this is float equality, not a tolerance check.
func TestHoistedRotationDispatch(t *testing.T) {
	p := buildRotationProgram(t, 8)
	res := compileForTest(t, p, compile.Options{})
	in := randomInputs(p, 11)

	var mu sync.Mutex
	var batches []int
	hoisted, outHoisted := runEncrypted(t, res, in, RunOptions{
		Scheduler: SchedulerSequential,
		OnHoistedBatch: func(rotations int) {
			mu.Lock()
			batches = append(batches, rotations)
			mu.Unlock()
		},
	})
	if outHoisted.Stats.HoistedBatches != 1 || outHoisted.Stats.HoistedRotations != 4 {
		t.Errorf("hoisted run stats = %d batches / %d rotations, want 1 / 4",
			outHoisted.Stats.HoistedBatches, outHoisted.Stats.HoistedRotations)
	}
	if len(batches) != 1 || batches[0] != 4 {
		t.Errorf("OnHoistedBatch calls = %v, want [4]", batches)
	}

	plain, outPlain := runEncrypted(t, res, in, RunOptions{
		Scheduler:       SchedulerSequential,
		DisableHoisting: true,
	})
	if outPlain.Stats.HoistedBatches != 0 || outPlain.Stats.HoistedRotations != 0 {
		t.Errorf("DisableHoisting run still reports %d batches / %d rotations",
			outPlain.Stats.HoistedBatches, outPlain.Stats.HoistedRotations)
	}

	for name, want := range plain {
		got, ok := hoisted[name]
		if !ok || len(got) != len(want) {
			t.Fatalf("output %q shape mismatch between hoisted and sequential runs", name)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("output %q slot %d: hoisted %v != sequential %v (hoisting must be bit-exact)",
					name, i, got[i], want[i])
			}
		}
	}
}

// TestHoistedRotationParallelScheduler runs the same program under the
// parallel scheduler, where several group members can race to compute the
// batch; exactly one must win.
func TestHoistedRotationParallelScheduler(t *testing.T) {
	p := buildRotationProgram(t, 8)
	res := compileForTest(t, p, compile.Options{})
	in := randomInputs(p, 13)
	_, out := runEncrypted(t, res, in, RunOptions{Workers: 4})
	if out.Stats.HoistedBatches != 1 || out.Stats.HoistedRotations != 4 {
		t.Errorf("parallel run stats = %d batches / %d rotations, want 1 / 4",
			out.Stats.HoistedBatches, out.Stats.HoistedRotations)
	}
}
