package execute

import (
	"fmt"

	"eva/internal/core"
)

// RunReference executes a program under the paper's reference semantics (the
// identity "encryption" scheme): every value is a plain vector, and the
// FHE-specific instructions RESCALE, MOD_SWITCH and RELINEARIZE are the
// identity on values. It works on both input programs and compiled programs
// and is the oracle the tests compare homomorphic results against.
func RunReference(p *core.Program, values Inputs) (map[string][]float64, error) {
	env := make(map[*core.Term][]float64, p.NumTerms())
	for _, in := range p.Inputs() {
		v, ok := values[in.Name]
		if !ok {
			return nil, fmt.Errorf("execute: missing value for input %q", in.Name)
		}
		if len(v) == 0 || len(v) > p.VecSize {
			return nil, fmt.Errorf("execute: input %q has %d values; want 1..%d", in.Name, len(v), p.VecSize)
		}
		env[in] = Replicate(v, p.VecSize)
	}
	for _, t := range p.TopoSort() {
		if t.Op == core.OpInput {
			continue
		}
		v, err := evalReference(t, env, p.VecSize)
		if err != nil {
			return nil, err
		}
		env[t] = v
	}
	out := make(map[string][]float64, len(p.Outputs()))
	for _, o := range p.Outputs() {
		out[o.Name] = env[o.Term]
	}
	return out, nil
}

func evalReference(t *core.Term, env map[*core.Term][]float64, vecSize int) ([]float64, error) {
	switch t.Op {
	case core.OpConstant:
		return Replicate(t.Value, vecSize), nil
	case core.OpNegate:
		return mapVec(env[t.Parm(0)], func(x float64) float64 { return -x }), nil
	case core.OpAdd:
		return zipVec(env[t.Parm(0)], env[t.Parm(1)], func(a, b float64) float64 { return a + b }), nil
	case core.OpSub:
		return zipVec(env[t.Parm(0)], env[t.Parm(1)], func(a, b float64) float64 { return a - b }), nil
	case core.OpMultiply:
		return zipVec(env[t.Parm(0)], env[t.Parm(1)], func(a, b float64) float64 { return a * b }), nil
	case core.OpRotateLeft:
		return rotate(env[t.Parm(0)], t.RotateBy), nil
	case core.OpRotateRight:
		return rotate(env[t.Parm(0)], -t.RotateBy), nil
	case core.OpRelinearize, core.OpModSwitch, core.OpRescale:
		return env[t.Parm(0)], nil
	default:
		return nil, fmt.Errorf("execute: unsupported opcode %s in reference executor", t.Op)
	}
}

func mapVec(a []float64, f func(float64) float64) []float64 {
	out := make([]float64, len(a))
	for i := range a {
		out[i] = f(a[i])
	}
	return out
}

func zipVec(a, b []float64, f func(a, b float64) float64) []float64 {
	out := make([]float64, len(a))
	for i := range a {
		out[i] = f(a[i], b[i])
	}
	return out
}

// rotate rotates v left by k positions (k may be negative for right rotations).
func rotate(v []float64, k int) []float64 {
	n := len(v)
	out := make([]float64, n)
	k = ((k % n) + n) % n
	for i := range out {
		out[i] = v[(i+k)%n]
	}
	return out
}
