package execute

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"eva/internal/ckks"
	"eva/internal/compile"
)

// setupRun compiles a program and prepares encrypted inputs for RunContext.
func setupRun(t *testing.T) (*Context, *compile.Result, *EncryptedInputs) {
	t.Helper()
	res := compileForTest(t, buildPolynomialProgram(t, 8), compile.DefaultOptions())
	prng := ckks.NewTestPRNG(11)
	ctx, keys, err := NewContext(res, prng)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := EncryptInputs(ctx, res, keys, randomInputs(res.Program, 3), prng)
	if err != nil {
		t.Fatal(err)
	}
	return ctx, res, enc
}

// TestRunContextCancelledBeforeStart: a context that is already cancelled must
// stop the run before any instruction executes.
func TestRunContextCancelledBeforeStart(t *testing.T) {
	ctx, res, enc := setupRun(t)
	stdctx, cancel := context.WithCancel(context.Background())
	cancel()
	var executed atomic.Int64
	_, err := RunContext(stdctx, ctx, res, enc, RunOptions{
		Workers:  2,
		Progress: func(done, total int) { executed.Store(int64(done)) },
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext = %v; want context.Canceled", err)
	}
	if n := executed.Load(); n != 0 {
		t.Errorf("executed %d instructions after pre-cancelled context; want 0", n)
	}
}

// TestRunContextCancelMidRun is the regression test for the runner ignoring
// caller cancellation: cancelling while workers are blocked mid-run must make
// RunContext return promptly with the context error, without executing the
// rest of the program. The Progress callback cancels after the first
// instruction, so with a single worker the remaining instructions are all
// still pending at cancellation time.
func TestRunContextCancelMidRun(t *testing.T) {
	ctx, res, enc := setupRun(t)
	total := len(res.Program.TopoSort())
	if total < 4 {
		t.Fatalf("test program too small (%d instructions)", total)
	}
	stdctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var executed atomic.Int64
	doneCh := make(chan error, 1)
	go func() {
		_, err := RunContext(stdctx, ctx, res, enc, RunOptions{
			Workers:   1,
			Scheduler: SchedulerParallel,
			Progress: func(done, total int) {
				executed.Store(int64(done))
				if done == 1 {
					cancel()
				}
			},
		})
		doneCh <- err
	}()
	select {
	case err := <-doneCh:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("RunContext = %v; want context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("RunContext did not return after cancellation (blocked worker)")
	}
	if n := executed.Load(); n >= int64(total) {
		t.Errorf("all %d instructions executed despite mid-run cancellation", total)
	}
}

// TestRunContextCancelBulkSynchronous covers the wave scheduler's
// cancellation path.
func TestRunContextCancelBulkSynchronous(t *testing.T) {
	ctx, res, enc := setupRun(t)
	stdctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunContext(stdctx, ctx, res, enc, RunOptions{Scheduler: SchedulerBulkSynchronous})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext = %v; want context.Canceled", err)
	}
}

// TestRunContextDeadline: an expired deadline surfaces as DeadlineExceeded.
func TestRunContextDeadline(t *testing.T) {
	ctx, res, enc := setupRun(t)
	stdctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := RunContext(stdctx, ctx, res, enc, RunOptions{}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("RunContext = %v; want context.DeadlineExceeded", err)
	}
}

// TestProgressReportsEveryInstruction: a full run reports a monotone sequence
// ending at (total, total).
func TestProgressReportsEveryInstruction(t *testing.T) {
	ctx, res, enc := setupRun(t)
	var calls []int
	total := -1
	out, err := RunContext(context.Background(), ctx, res, enc, RunOptions{
		Workers:  2,
		Progress: func(done, n int) { calls = append(calls, done); total = n },
	})
	if err != nil {
		t.Fatal(err)
	}
	if out == nil {
		t.Fatal("no outputs")
	}
	if total != out.Stats.Instructions {
		t.Errorf("Progress total = %d; want %d", total, out.Stats.Instructions)
	}
	if len(calls) != total {
		t.Fatalf("Progress called %d times; want %d", len(calls), total)
	}
	for i, d := range calls {
		if d != i+1 {
			t.Fatalf("Progress sequence not monotone at %d: got %d", i, d)
		}
	}
}
