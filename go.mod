module eva

go 1.24
