// Benchmarks regenerating the paper's evaluation (Section 8). There is one
// benchmark per table and figure:
//
//	BenchmarkTable4Accuracy    - encrypted-inference fidelity (Table 4)
//	BenchmarkTable5DNNLatency  - CHET vs EVA inference latency (Table 5)
//	BenchmarkTable6Parameters  - selected encryption parameters (Table 6)
//	BenchmarkTable7Times       - compile / context / encrypt / decrypt (Table 7)
//	BenchmarkTable8Applications- the application suite (Table 8)
//	BenchmarkFigure7Scaling    - strong scaling of both pipelines (Figure 7)
//
// plus ablation benchmarks for the design choices called out in DESIGN.md
// (rescale strategy, modulus-switch strategy, scheduler). The benchmarks use
// the scaled-down network configuration so the whole suite completes in
// minutes; `cmd/evabench -full -secure` runs the paper-scale setting.
//
// Numbers are reported through b.ReportMetric so `go test -bench` output
// doubles as the data for EXPERIMENTS.md.
package eva_test

import (
	"fmt"
	"runtime"
	"testing"

	"eva/internal/apps"
	"eva/internal/bench"
	"eva/internal/chet"
	"eva/internal/ckks"
	"eva/internal/compile"
	"eva/internal/core"
	"eva/internal/execute"
	"eva/internal/nn"
	"eva/internal/rewrite"
)

func benchOptions() bench.Options {
	o := bench.DefaultOptions()
	o.Config = nn.Config{InputSize: 8, ChannelDivisor: 8}
	return o
}

// benchNetworks returns the evaluation networks in a configuration small
// enough for repeated benchmark iterations.
func benchNetworks() []*nn.Network {
	return nn.All(nn.Config{InputSize: 8, ChannelDivisor: 8})
}

// BenchmarkTable4Accuracy measures the fidelity of encrypted inference
// relative to the unencrypted reference for both pipelines (the offline
// analogue of Table 4's accuracy columns: same model, same inputs, encrypted
// vs unencrypted execution).
func BenchmarkTable4Accuracy(b *testing.B) {
	for _, net := range benchNetworks() {
		b.Run(net.Name, func(b *testing.B) {
			opts := benchOptions()
			var res *bench.NetworkResult
			var err error
			for i := 0; i < b.N; i++ {
				res, err = bench.RunNetwork(net, opts)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.EVA.MaxError, "eva-max-err")
			b.ReportMetric(res.CHET.MaxError, "chet-max-err")
			b.ReportMetric(boolMetric(res.EVA.AgreesRef), "eva-agree")
			b.ReportMetric(boolMetric(res.CHET.AgreesRef), "chet-agree")
		})
	}
}

// BenchmarkTable5DNNLatency measures the inference latency of the CHET
// baseline and of EVA on every network (Table 5). The reported speedup is the
// paper's headline metric.
func BenchmarkTable5DNNLatency(b *testing.B) {
	for _, net := range benchNetworks() {
		b.Run(net.Name, func(b *testing.B) {
			opts := benchOptions()
			var res *bench.NetworkResult
			var err error
			for i := 0; i < b.N; i++ {
				res, err = bench.RunNetwork(net, opts)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.EVA.RunTime.Seconds(), "eva-s")
			b.ReportMetric(res.CHET.RunTime.Seconds(), "chet-s")
			b.ReportMetric(res.Speedup(), "speedup-x")
			b.ReportMetric(float64(net.Paper.CHETLatency)/float64(net.Paper.EVALatency), "paper-speedup-x")
		})
	}
}

// BenchmarkTable6Parameters measures compilation and reports the encryption
// parameters both pipelines select (Table 6).
func BenchmarkTable6Parameters(b *testing.B) {
	for _, net := range benchNetworks() {
		b.Run(net.Name, func(b *testing.B) {
			rngSeed := int64(1)
			weights := nn.RandomWeights(net, newRand(rngSeed))
			prog, err := nn.BuildProgram(net, weights)
			if err != nil {
				b.Fatal(err)
			}
			opts := compile.DefaultOptions()
			opts.AllowInsecure = true
			var evaRes, chetRes *compile.Result
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				evaRes, err = compile.Compile(prog, opts)
				if err != nil {
					b.Fatal(err)
				}
				chetRes, err = chet.Compile(prog, opts)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(evaRes.Plan.LogQP()), "eva-logQ")
			b.ReportMetric(float64(evaRes.Plan.NumPrimes()), "eva-r")
			b.ReportMetric(float64(chetRes.Plan.LogQP()), "chet-logQ")
			b.ReportMetric(float64(chetRes.Plan.NumPrimes()), "chet-r")
		})
	}
}

// BenchmarkTable7Times measures the EVA pipeline's compilation, encryption
// context (key generation), encryption, and decryption times (Table 7).
func BenchmarkTable7Times(b *testing.B) {
	for _, net := range benchNetworks() {
		b.Run(net.Name, func(b *testing.B) {
			opts := benchOptions()
			var res *bench.NetworkResult
			var err error
			for i := 0; i < b.N; i++ {
				res, err = bench.RunNetwork(net, opts)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.EVA.CompileTime.Seconds(), "compile-s")
			b.ReportMetric(res.EVA.ContextTime.Seconds(), "context-s")
			b.ReportMetric(res.EVA.EncryptTime.Seconds(), "encrypt-s")
			b.ReportMetric(res.EVA.DecryptTime.Seconds(), "decrypt-s")
		})
	}
}

// BenchmarkTable8Applications measures the single-thread latency of every
// application of Table 8 and reports the error against the plain reference.
func BenchmarkTable8Applications(b *testing.B) {
	suite, err := apps.Suite(256, 8)
	if err != nil {
		b.Fatal(err)
	}
	for _, app := range suite {
		b.Run(app.Name, func(b *testing.B) {
			opts := benchOptions()
			var res *bench.AppResult
			for i := 0; i < b.N; i++ {
				res, err = bench.RunApplication(app, opts)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.RunTime.Seconds(), "run-s")
			b.ReportMetric(res.MaxError, "max-err")
			b.ReportMetric(float64(app.LinesOfCode), "loc")
			b.ReportMetric(app.Paper.TimeSeconds, "paper-s")
		})
	}
}

// BenchmarkFigure7Scaling measures strong scaling of both pipelines over
// increasing worker counts (Figure 7). LeNet-5-small is omitted as in the paper.
func BenchmarkFigure7Scaling(b *testing.B) {
	threadCounts := []int{1, 2, 4}
	if p := runtime.GOMAXPROCS(0); p > 4 {
		threadCounts = append(threadCounts, p)
	}
	nets := []*nn.Network{
		nn.LeNet5Medium(nn.Config{InputSize: 8, ChannelDivisor: 8}),
		nn.Industrial(nn.Config{InputSize: 8, ChannelDivisor: 8}),
	}
	for _, net := range nets {
		for _, threads := range threadCounts {
			b.Run(fmt.Sprintf("%s/threads=%d", net.Name, threads), func(b *testing.B) {
				opts := benchOptions()
				var points []bench.ScalingPoint
				var err error
				for i := 0; i < b.N; i++ {
					points, err = bench.RunScaling(net, []int{threads}, opts)
					if err != nil {
						b.Fatal(err)
					}
				}
				for _, p := range points {
					switch p.Pipeline {
					case "EVA":
						b.ReportMetric(p.Latency.Seconds(), "eva-s")
					case "CHET":
						b.ReportMetric(p.Latency.Seconds(), "chet-s")
					}
				}
			})
		}
	}
}

// BenchmarkAblationRescaleStrategy compares the paper's waterline insertion
// against the per-multiply always-rescale rule and against the CHET-style
// uniform-scale fixed rescaling on the Harris program, reporting the
// resulting modulus chain length and size (the optimization target of
// Section 5.3). The fixed-maximum discipline requires CHET's uniform 60-bit
// working scale, so that case goes through the chet pipeline.
func BenchmarkAblationRescaleStrategy(b *testing.B) {
	app, err := apps.HarrisCornerDetection(16)
	if err != nil {
		b.Fatal(err)
	}
	opts := compile.DefaultOptions()
	opts.AllowInsecure = true
	cases := map[string]func() (*compile.Result, error){
		"waterline": func() (*compile.Result, error) {
			return compile.Compile(app.Program, opts)
		},
		"always": func() (*compile.Result, error) {
			o := opts
			o.Rescale = rewrite.RescaleAlways
			o.ModSwitch = rewrite.ModSwitchLazy
			return compile.Compile(app.Program, o)
		},
		"chet-fixed-max": func() (*compile.Result, error) {
			return chet.Compile(app.Program, opts)
		},
	}
	for name, compileFn := range cases {
		b.Run(name, func(b *testing.B) {
			var res *compile.Result
			var err error
			for i := 0; i < b.N; i++ {
				res, err = compileFn()
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.Plan.NumPrimes()), "primes")
			b.ReportMetric(float64(res.Plan.LogQP()), "logQ")
		})
	}
}

// BenchmarkAblationModSwitch compares eager and lazy modulus-switch insertion
// on the Sobel program, reporting the number of inserted MOD_SWITCH
// instructions and compiled program size.
func BenchmarkAblationModSwitch(b *testing.B) {
	app, err := apps.SobelFilter(16)
	if err != nil {
		b.Fatal(err)
	}
	for name, strategy := range map[string]rewrite.ModSwitchStrategy{
		"eager": rewrite.ModSwitchEager,
		"lazy":  rewrite.ModSwitchLazy,
	} {
		b.Run(name, func(b *testing.B) {
			opts := compile.DefaultOptions()
			opts.AllowInsecure = true
			opts.ModSwitch = strategy
			var res *compile.Result
			var err error
			for i := 0; i < b.N; i++ {
				res, err = compile.Compile(app.Program, opts)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.CompiledStats.Instructions["MOD_SWITCH"]), "modswitches")
			b.ReportMetric(float64(res.CompiledStats.Terms), "terms")
		})
	}
}

// BenchmarkAblationScheduler compares EVA's asynchronous DAG scheduler with
// the bulk-synchronous baseline and sequential execution on the same compiled
// program (the execution-side half of the paper's speedup).
func BenchmarkAblationScheduler(b *testing.B) {
	app, err := apps.HarrisCornerDetection(16)
	if err != nil {
		b.Fatal(err)
	}
	opts := compile.DefaultOptions()
	opts.AllowInsecure = true
	res, err := compile.Compile(app.Program, opts)
	if err != nil {
		b.Fatal(err)
	}
	prng := ckks.NewTestPRNG(1)
	ctx, keys, err := execute.NewContext(res, prng)
	if err != nil {
		b.Fatal(err)
	}
	in := app.MakeInputs(newRand(1))
	enc, err := execute.EncryptInputs(ctx, res, keys, in, prng)
	if err != nil {
		b.Fatal(err)
	}
	for name, sched := range map[string]execute.Scheduler{
		"parallel":         execute.SchedulerParallel,
		"bulk-synchronous": execute.SchedulerBulkSynchronous,
		"sequential":       execute.SchedulerSequential,
	} {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := execute.Run(ctx, res, enc, execute.RunOptions{Scheduler: sched}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSourceFrontend measures the textual frontend (beyond the paper):
// for each program it reports how long printing to .eva source and parsing +
// lowering the source back take next to the backend compile time, plus the
// frontend's share of a source-submission /compile request. This is the cost
// a client pays for POSTing source text to evaserve instead of the JSON wire
// format.
func BenchmarkSourceFrontend(b *testing.B) {
	programs := map[string]*core.Program{
		"x2y3": bench.FigureDemoProgram(),
	}
	sobel, err := apps.SobelFilter(16)
	if err != nil {
		b.Fatal(err)
	}
	programs["sobel-16"] = sobel.Program
	harris, err := apps.HarrisCornerDetection(16)
	if err != nil {
		b.Fatal(err)
	}
	programs["harris-16"] = harris.Program
	net := nn.LeNet5Small(nn.Config{InputSize: 8, ChannelDivisor: 8})
	lenet, err := nn.BuildProgram(net, nn.RandomWeights(net, newRand(3)))
	if err != nil {
		b.Fatal(err)
	}
	programs["lenet-5-small"] = lenet

	opts := compile.DefaultOptions()
	opts.AllowInsecure = true
	for name, prog := range programs {
		b.Run(name, func(b *testing.B) {
			var res *bench.FrontendResult
			var err error
			for i := 0; i < b.N; i++ {
				res, err = bench.RunFrontend(prog, opts)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.PrintTime.Seconds()*1e3, "print-ms")
			b.ReportMetric(res.ParseTime.Seconds()*1e3, "parse-ms")
			b.ReportMetric(res.CompileTime.Seconds()*1e3, "compile-ms")
			b.ReportMetric(res.FrontendShare()*100, "frontend-%")
			b.ReportMetric(float64(res.SourceBytes), "src-bytes")
		})
	}
}

// BenchmarkCompilerOnly isolates compilation throughput on the largest
// tensor program of the suite (part of Table 7's compile-time column).
func BenchmarkCompilerOnly(b *testing.B) {
	net := nn.SqueezeNetCIFAR(nn.Config{InputSize: 8, ChannelDivisor: 8})
	weights := nn.RandomWeights(net, newRand(2))
	prog, err := nn.BuildProgram(net, weights)
	if err != nil {
		b.Fatal(err)
	}
	opts := compile.DefaultOptions()
	opts.AllowInsecure = true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := compile.Compile(prog, opts); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(prog.NumTerms()), "input-terms")
}

func boolMetric(v bool) float64 {
	if v {
		return 1
	}
	return 0
}
