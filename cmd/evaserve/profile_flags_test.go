package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"eva/internal/profile"
)

const profileTestProgram = `program profsmoke vec=8;
input x @30;
input y @30;
s = x * x + y;
out = rotl(s, 1) * 0.5@30;
output out @30;`

// startNode boots evaserve with the given extra flags and returns its address
// and a shutdown function that waits for a clean exit.
func startNode(t *testing.T, extra ...string) (string, func()) {
	t.Helper()
	sig := make(chan os.Signal, 1)
	addrCh := make(chan string, 1)
	done := make(chan error, 1)
	args := append([]string{"-addr", "127.0.0.1:0"}, extra...)
	go func() {
		done <- run(args, io.Discard, io.Discard, sig, func(addr string) { addrCh <- addr })
	}()
	var addr string
	select {
	case addr = <-addrCh:
	case err := <-done:
		t.Fatalf("server exited before starting: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server did not start")
	}
	return addr, func() {
		sig <- os.Interrupt
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("shutdown: %v", err)
			}
		case <-time.After(15 * time.Second):
			t.Fatal("server did not shut down")
		}
	}
}

func postProfileJSON(t *testing.T, url string, body any, out any) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST %s: status %d: %s", url, resp.StatusCode, raw)
	}
	if err := json.Unmarshal(raw, out); err != nil {
		t.Fatalf("POST %s: %v in %s", url, err, raw)
	}
}

// runDemoBatch compiles the smoke program, installs a demo context, and
// executes one batch against the node.
func runDemoBatch(t *testing.T, addr string) {
	t.Helper()
	base := "http://" + addr
	var comp struct {
		ID string `json:"id"`
	}
	postProfileJSON(t, base+"/compile", map[string]any{
		"source":  profileTestProgram,
		"options": map[string]any{"allow_insecure": true},
	}, &comp)
	var ectx struct {
		ContextID string `json:"context_id"`
	}
	postProfileJSON(t, base+"/contexts", map[string]any{
		"program_id": comp.ID,
		"keygen":     map[string]any{"seed": 11},
	}, &ectx)
	var exec struct {
		Results []struct {
			Error string `json:"error"`
		} `json:"results"`
	}
	postProfileJSON(t, base+"/execute/"+comp.ID, map[string]any{
		"context_id": ectx.ContextID,
		"batches": []map[string]any{{"values": map[string][]float64{
			"x": {1, 2, 3, 4, 5, 6, 7, 8},
			"y": {8, 7, 6, 5, 4, 3, 2, 1},
		}}},
	}, &exec)
	if len(exec.Results) != 1 || exec.Results[0].Error != "" {
		t.Fatalf("execute: %+v", exec)
	}
}

func fetchProfile(t *testing.T, addr string) profile.Report {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/profile")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rep profile.Report
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestCalibrateFlow is the operator walkthrough end to end: run a durable
// node with full sampling, execute a batch, shut down (flushing profiles),
// fit a calibration offline with -calibrate, and check a restarted node
// loads it — and that -calibration FILE installs the same fit on a fresh
// non-durable node.
func TestCalibrateFlow(t *testing.T) {
	dir := t.TempDir()

	addr, shutdown := startNode(t, "-demo", "-data-dir", dir, "-profile-sample", "1")
	runDemoBatch(t, addr)
	rep := fetchProfile(t, addr)
	if !rep.Enabled || rep.Samples == 0 {
		t.Fatalf("profiler recorded nothing: %+v", rep)
	}
	shutdown()

	// Offline calibration pass: fits, saves, prints, exits.
	var out strings.Builder
	if err := run([]string{"-calibrate", "-data-dir", dir}, &out, io.Discard, nil, nil); err != nil {
		t.Fatalf("-calibrate: %v", err)
	}
	var cal profile.Calibration
	if err := json.Unmarshal([]byte(out.String()), &cal); err != nil {
		t.Fatalf("-calibrate printed %q: %v", out.String(), err)
	}
	if cal.Samples == 0 || cal.BaselineNsPerUnit <= 0 {
		t.Fatalf("degenerate fit: %+v", cal)
	}

	// A restarted durable node loads the saved calibration.
	addr2, shutdown2 := startNode(t, "-demo", "-data-dir", dir, "-profile-sample", "1")
	if rep := fetchProfile(t, addr2); rep.Calibration == nil || rep.Calibration.Samples != cal.Samples {
		t.Fatalf("restarted node did not load calibration: %+v", rep.Calibration)
	}
	shutdown2()

	// -calibration FILE installs the fit without a data dir.
	calFile := filepath.Join(dir, "fit.json")
	if err := os.WriteFile(calFile, []byte(out.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	addr3, shutdown3 := startNode(t, "-demo", "-calibration", calFile)
	defer shutdown3()
	if rep := fetchProfile(t, addr3); rep.Calibration == nil || rep.Calibration.Samples != cal.Samples {
		t.Fatalf("-calibration file not installed: %+v", rep.Calibration)
	}
}

// TestCalibrateRequiresDataDir: the offline pass refuses to run without a
// store to read profiles from.
func TestCalibrateRequiresDataDir(t *testing.T) {
	err := run([]string{"-calibrate"}, io.Discard, io.Discard, nil, nil)
	if err == nil || !strings.Contains(err.Error(), "-data-dir") {
		t.Fatalf("want -data-dir error, got %v", err)
	}
}

// TestProfileSampleOff: -profile-sample -1 disables the recorder.
func TestProfileSampleOff(t *testing.T) {
	addr, shutdown := startNode(t, "-demo", "-profile-sample", "-1")
	defer shutdown()
	runDemoBatch(t, addr)
	if rep := fetchProfile(t, addr); rep.Enabled || rep.Samples != 0 {
		t.Fatalf("disabled profiler recorded: %+v", rep)
	}
}
