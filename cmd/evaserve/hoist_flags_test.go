package main

import (
	"context"
	"io"
	"os"
	"strings"
	"testing"
	"time"

	"eva/eva"
	"eva/internal/ring"
	"eva/internal/serve"
)

// startServer runs the command with the given extra flags on an ephemeral
// port and returns a client for it plus a shutdown func.
func startServer(t *testing.T, extra ...string) (*eva.Client, func()) {
	t.Helper()
	sig := make(chan os.Signal, 1)
	addrCh := make(chan string, 1)
	done := make(chan error, 1)
	var out strings.Builder
	args := append([]string{"-addr", "127.0.0.1:0", "-demo"}, extra...)
	go func() {
		done <- run(args, &out, io.Discard, sig, func(addr string) { addrCh <- addr })
	}()
	var addr string
	select {
	case addr = <-addrCh:
	case err := <-done:
		t.Fatalf("server exited before starting: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server did not start")
	}
	return eva.NewClient("http://" + addr), func() {
		sig <- os.Interrupt
		select {
		case <-done:
		case <-time.After(15 * time.Second):
			t.Fatal("server did not shut down")
		}
	}
}

// runRotationJob compiles a program whose two rotations share one source,
// executes it as a job, and returns the finished trace.
func runRotationJob(t *testing.T, c *eva.Client) eva.JobTrace {
	t.Helper()
	ctx := context.Background()
	comp, err := c.Compile(ctx, eva.CompileRequest{
		Source: `program rot vec=8;
input x @30;
out = rotl(x, 1) + rotl(x, 2);
output out @30;`,
		Options: &serve.CompileOptionsJSON{AllowInsecure: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	ectx, err := c.NewKeygenContext(ctx, comp.ID, 17)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Submit(ctx, comp.ID, ectx.ContextID, []eva.ExecuteBatch{
		{Values: map[string][]float64{"x": {1, 2, 3, 4, 5, 6, 7, 8}}},
	}, eva.SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.WaitJob(ctx, res.Job.JobID); err != nil {
		t.Fatal(err)
	}
	tr, err := c.FetchJobTrace(ctx, res.Job.JobID)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func countHoistedSpans(spans []eva.JobTraceSpan) int {
	n := 0
	for _, sp := range spans {
		if sp.Name == "rotate_hoisted" {
			n++
		}
		n += countHoistedSpans(sp.Children)
	}
	return n
}

// TestHoistFlagDefaults: with no flags given, hoisting is on — a job whose
// rotations share a source traces a rotate_hoisted batch.
func TestHoistFlagDefaults(t *testing.T) {
	c, stop := startServer(t)
	defer stop()
	tr := runRotationJob(t, c)
	if n := countHoistedSpans(tr.Spans); n < 1 {
		t.Fatalf("default flags traced %d rotate_hoisted spans, want >= 1", n)
	}
}

// TestHoistFlagsDisable: -hoist-rotations=false turns batching off and
// -ring-workers sizes the process-wide limb pool.
func TestHoistFlagsDisable(t *testing.T) {
	defer ring.SetWorkers(0) // restore the GOMAXPROCS default for other tests
	c, stop := startServer(t, "-hoist-rotations=false", "-ring-workers", "3")
	defer stop()
	if got := ring.Workers(); got != 3 {
		t.Errorf("-ring-workers 3 left the pool at %d workers", got)
	}
	tr := runRotationJob(t, c)
	if n := countHoistedSpans(tr.Spans); n != 0 {
		t.Fatalf("-hoist-rotations=false still traced %d rotate_hoisted spans", n)
	}
}
