package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"testing"
	"time"
)

// TestRunServesAndShutsDown is the end-to-end smoke test: bind an ephemeral
// port, hit /healthz over real HTTP, then deliver the shutdown signal and
// check the server exits cleanly.
func TestRunServesAndShutsDown(t *testing.T) {
	sig := make(chan os.Signal, 1)
	addrCh := make(chan string, 1)
	done := make(chan error, 1)
	var out strings.Builder
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0"}, &out, io.Discard, sig, func(addr string) { addrCh <- addr })
	}()

	var addr string
	select {
	case addr = <-addrCh:
	case err := <-done:
		t.Fatalf("server exited before starting: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server did not start")
	}

	resp, err := http.Get(fmt.Sprintf("http://%s/healthz", addr))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	var health struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" {
		t.Fatalf("healthz status %q", health.Status)
	}

	sig <- os.Interrupt
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v on clean shutdown", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server did not shut down")
	}
	if !strings.Contains(out.String(), "listening on") || !strings.Contains(out.String(), "shutting down") {
		t.Errorf("unexpected lifecycle output:\n%s", out.String())
	}
}

func TestRunBadFlags(t *testing.T) {
	if err := run([]string{"-nonsense"}, io.Discard, io.Discard, nil, nil); err == nil {
		t.Error("expected an error for an unknown flag")
	}
}

func TestRunBadAddr(t *testing.T) {
	err := run([]string{"-addr", "256.0.0.1:bad"}, io.Discard, io.Discard, nil, nil)
	if err == nil {
		t.Error("expected an error for an unbindable address")
	}
}
