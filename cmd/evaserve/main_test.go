package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"testing"
	"time"
)

// TestRunServesAndShutsDown is the end-to-end smoke test: bind an ephemeral
// port, hit /healthz over real HTTP, then deliver the shutdown signal and
// check the server exits cleanly.
func TestRunServesAndShutsDown(t *testing.T) {
	sig := make(chan os.Signal, 1)
	addrCh := make(chan string, 1)
	done := make(chan error, 1)
	var out strings.Builder
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0"}, &out, io.Discard, sig, func(addr string) { addrCh <- addr })
	}()

	var addr string
	select {
	case addr = <-addrCh:
	case err := <-done:
		t.Fatalf("server exited before starting: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server did not start")
	}

	resp, err := http.Get(fmt.Sprintf("http://%s/healthz", addr))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	var health struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" {
		t.Fatalf("healthz status %q", health.Status)
	}

	sig <- os.Interrupt
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v on clean shutdown", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server did not shut down")
	}
	if !strings.Contains(out.String(), "listening on") || !strings.Contains(out.String(), "shutting down") {
		t.Errorf("unexpected lifecycle output:\n%s", out.String())
	}
}

// TestRunGracefulDrain: a SIGTERM with a job in flight must drain it —
// the job completes, its result is persisted in the -data-dir store, and
// the process reports a clean drain.
func TestRunGracefulDrain(t *testing.T) {
	dir := t.TempDir()
	sig := make(chan os.Signal, 1)
	addrCh := make(chan string, 1)
	done := make(chan error, 1)
	var out strings.Builder
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-demo", "-data-dir", dir, "-drain-timeout", "30s"},
			&out, io.Discard, sig, func(addr string) { addrCh <- addr })
	}()
	var addr string
	select {
	case addr = <-addrCh:
	case err := <-done:
		t.Fatalf("server exited before starting: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server did not start")
	}
	base := "http://" + addr

	post := func(path string, body string) map[string]any {
		t.Helper()
		resp, err := http.Post(base+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var v map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode >= 300 {
			t.Fatalf("POST %s: status %d: %v", path, resp.StatusCode, v)
		}
		return v
	}
	comp := post("/compile", `{"source":"program drain vec=4;\ninput x @30;\nout = x * x;\noutput out @30;","options":{"allow_insecure":true}}`)
	progID, _ := comp["id"].(string)
	ctxResp := post("/contexts", fmt.Sprintf(`{"program_id":%q,"keygen":{"seed":5}}`, progID))
	ctxID, _ := ctxResp["context_id"].(string)
	job := post("/jobs", fmt.Sprintf(`{"program_id":%q,"context_id":%q,"batches":[{"values":{"x":[1,2,3,4]}}]}`, progID, ctxID))
	jobID, _ := job["job_id"].(string)
	if jobID == "" {
		t.Fatalf("no job id in %v", job)
	}

	// Shut down immediately: the drain must let the job finish.
	sig <- os.Interrupt
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v on graceful drain", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("server did not shut down")
	}
	if !strings.Contains(out.String(), "drained cleanly") {
		t.Errorf("no clean drain reported:\n%s", out.String())
	}

	// The drained job's result must be durable: restart onto the same
	// data-dir and fetch it.
	sig2 := make(chan os.Signal, 1)
	addrCh2 := make(chan string, 1)
	done2 := make(chan error, 1)
	go func() {
		done2 <- run([]string{"-addr", "127.0.0.1:0", "-demo", "-data-dir", dir},
			io.Discard, io.Discard, sig2, func(addr string) { addrCh2 <- addr })
	}()
	select {
	case addr = <-addrCh2:
	case err := <-done2:
		t.Fatalf("restarted server exited: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("restarted server did not start")
	}
	resp, err := http.Get("http://" + addr + "/jobs/" + jobID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	var result struct {
		Status  string `json:"status"`
		Results []struct {
			Values map[string][]float64 `json:"values"`
		} `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&result); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || result.Status != "done" || len(result.Results) != 1 {
		t.Fatalf("post-restart result fetch: status %d, %+v", resp.StatusCode, result)
	}
	sig2 <- os.Interrupt
	if err := <-done2; err != nil {
		t.Fatalf("restarted server shutdown: %v", err)
	}
}

func TestParsePeers(t *testing.T) {
	peers, err := parsePeers("n2=http://h2:8080, n3=http://h3:8080/")
	if err != nil {
		t.Fatal(err)
	}
	if peers["n2"] != "http://h2:8080" || peers["n3"] != "http://h3:8080" {
		t.Fatalf("parsed %v", peers)
	}
	for _, bad := range []string{"n2", "=url", "n2=", "n2=u,n2=v"} {
		if _, err := parsePeers(bad); err == nil {
			t.Errorf("parsePeers(%q) accepted", bad)
		}
	}
}

func TestRunPeersRequireNodeID(t *testing.T) {
	err := run([]string{"-peers", "n2=http://h2:8080"}, io.Discard, io.Discard, nil, nil)
	if err == nil || !strings.Contains(err.Error(), "-node-id") {
		t.Fatalf("err = %v; want a -node-id requirement", err)
	}
}

func TestRunBadFlags(t *testing.T) {
	if err := run([]string{"-nonsense"}, io.Discard, io.Discard, nil, nil); err == nil {
		t.Error("expected an error for an unknown flag")
	}
}

func TestRunBadAddr(t *testing.T) {
	err := run([]string{"-addr", "256.0.0.1:bad"}, io.Discard, io.Discard, nil, nil)
	if err == nil {
		t.Error("expected an error for an unbindable address")
	}
}

// TestPprofEndpoint boots the server with -pprof-addr on an ephemeral port,
// parses the announced profiler address from stdout, and smoke-tests the
// pprof index and a sample profile. The profiler must NOT be reachable on
// the public API address.
func TestPprofEndpoint(t *testing.T) {
	sig := make(chan os.Signal, 1)
	addrCh := make(chan string, 1)
	done := make(chan error, 1)
	var out strings.Builder
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-pprof-addr", "127.0.0.1:0"},
			&out, io.Discard, sig, func(addr string) { addrCh <- addr })
	}()

	var apiAddr string
	select {
	case apiAddr = <-addrCh:
	case err := <-done:
		t.Fatalf("server exited before starting: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server did not start")
	}
	defer func() {
		sig <- os.Interrupt
		select {
		case <-done:
		case <-time.After(15 * time.Second):
			t.Fatal("server did not shut down")
		}
	}()

	// The pprof line is printed before the started callback fires.
	var pprofAddr string
	for _, line := range strings.Split(out.String(), "\n") {
		if rest, ok := strings.CutPrefix(line, "evaserve pprof listening on "); ok {
			pprofAddr = strings.TrimSpace(rest)
		}
	}
	if pprofAddr == "" {
		t.Fatalf("no pprof address announced:\n%s", out.String())
	}

	resp, err := http.Get(fmt.Sprintf("http://%s/debug/pprof/", pprofAddr))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index: status %d", resp.StatusCode)
	}
	if !strings.Contains(string(body), "goroutine") {
		t.Errorf("pprof index does not list profiles:\n%.300s", body)
	}
	resp, err = http.Get(fmt.Sprintf("http://%s/debug/pprof/goroutine?debug=1", pprofAddr))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("goroutine profile: status %d", resp.StatusCode)
	}

	// Isolation: the public API must not expose the profiler.
	resp, err = http.Get(fmt.Sprintf("http://%s/debug/pprof/", apiAddr))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Error("profiler reachable on the public API address")
	}
}
