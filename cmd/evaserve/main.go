// Command evaserve runs the EVA compile-and-execute service: an HTTP JSON
// API over the full pipeline. Clients POST serialized EVA programs to
// /compile (compiled once per distinct program, cached in an LRU registry),
// install evaluation keys with POST /contexts, and run batches of encrypted
// inputs with POST /execute/{id}. GET /programs, /healthz and /metrics
// expose the registry, liveness, and request/cache/latency metrics.
//
// Long-running work goes through the asynchronous jobs API: POST /jobs
// enqueues an execution and returns a job id, a bounded worker pool drains
// the queue under a configurable memory budget, GET /jobs/{id} polls,
// GET /jobs/{id}/events streams progress over SSE, and GET /jobs/{id}/result
// delivers the results exactly once.
//
// Usage:
//
//	evaserve [-addr :8080] [-cache 128] [-workers 0] [-batches 0] [-demo]
//	         [-job-workers 2] [-job-queue 64] [-job-memory-mb 8192] [-result-ttl 2m]
//
// -demo enables server-side key generation ("keygen" contexts): the server
// then holds secret keys and accepts plaintext values, which breaks the
// paper's threat model but makes curl-only walkthroughs and load tests
// possible. Without -demo, clients must generate keys locally and upload
// only public evaluation keys — the paper's deployment model.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"eva/internal/serve"
)

func main() {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	if err := run(os.Args[1:], os.Stdout, os.Stderr, sig, nil); err != nil {
		if err == flag.ErrHelp {
			return // -h is a successful invocation
		}
		fmt.Fprintln(os.Stderr, "evaserve:", err)
		os.Exit(1)
	}
}

// run executes the evaserve command line. It is the testable core of main:
// it binds the listener itself (so -addr :0 works and tests learn the bound
// address through the started callback), serves until the signal channel
// fires or the server fails, and returns errors instead of exiting.
func run(args []string, stdout, stderr io.Writer, sig <-chan os.Signal, started func(addr string)) error {
	fs := flag.NewFlagSet("evaserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr      = fs.String("addr", ":8080", "listen address")
		cache     = fs.Int("cache", 128, "compiled-program cache capacity")
		workers   = fs.Int("workers", 0, "default executor workers per batch (0 = GOMAXPROCS)")
		batches   = fs.Int("batches", 0, "max concurrent batches per request (0 = GOMAXPROCS)")
		contexts  = fs.Int("contexts", 256, "max retained execution contexts (LRU)")
		demo      = fs.Bool("demo", false, "enable server-side keygen (trusted demo mode)")
		jobW      = fs.Int("job-workers", 0, "async jobs executed concurrently (0 = 2)")
		jobQueue  = fs.Int("job-queue", 0, "async job queue depth (0 = 64)")
		jobMemMB  = fs.Int64("job-memory-mb", 0, "admitted-jobs ciphertext memory budget in MiB (0 = 8192)")
		resultTTL = fs.Duration("result-ttl", 0, "retention of finished jobs and unfetched results (0 = 2m)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	srv := serve.NewServer(serve.Config{
		CacheCapacity:        *cache,
		DefaultWorkers:       *workers,
		MaxConcurrentBatches: *batches,
		MaxContexts:          *contexts,
		AllowServerKeygen:    *demo,
		JobWorkers:           *jobW,
		JobQueueDepth:        *jobQueue,
		JobMemoryBudgetBytes: *jobMemMB << 20,
		JobResultTTL:         *resultTTL,
	})
	defer srv.Close()
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	fmt.Fprintf(stdout, "evaserve listening on %s (demo mode: %v)\n", ln.Addr(), *demo)
	if started != nil {
		started(ln.Addr().String())
	}

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
	case <-sig:
		fmt.Fprintln(stdout, "evaserve: shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			return fmt.Errorf("shutdown: %w", err)
		}
	}
	return nil
}
