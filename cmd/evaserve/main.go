// Command evaserve runs the EVA compile-and-execute service: an HTTP JSON
// API over the full pipeline. Clients POST serialized EVA programs to
// /compile (compiled once per distinct program, cached in an LRU registry),
// install evaluation keys with POST /contexts, and run batches of encrypted
// inputs with POST /execute/{id}. GET /programs, /healthz and /metrics
// expose the registry, liveness, and request/cache/latency metrics.
//
// Long-running work goes through the asynchronous jobs API: POST /jobs
// enqueues an execution and returns a job id, a bounded worker pool drains
// the queue under a configurable memory budget, GET /jobs/{id} polls,
// GET /jobs/{id}/events streams progress over SSE, and GET /jobs/{id}/result
// delivers the results exactly once.
//
// With -data-dir the node is durable: compiled programs, installed contexts
// (their evaluation-key bundles), and finished job results are persisted in
// a crash-consistent filesystem store, so a restarted node serves every
// previously issued id without clients resubmitting anything. With -node-id
// and -peers the node joins a static-membership cluster: contexts are
// sharded over the members by consistent hashing, any node routes requests
// to the owner, contexts are replicated to the next replica, and jobs whose
// owner dies are requeued onto a surviving replica.
//
// Usage:
//
//	evaserve [-addr :8080] [-cache 128] [-workers 0] [-batches 0] [-demo]
//	         [-ring-workers 0] [-hoist-rotations]
//	         [-job-workers 2] [-job-queue 64] [-job-memory-mb 8192] [-result-ttl 2m]
//	         [-coalesce-max 64] [-coalesce-wait 25ms]
//	         [-data-dir /var/lib/evaserve] [-drain-timeout 30s]
//	         [-node-id n1] [-peers n2=http://host2:8080,n3=http://host3:8080]
//	         [-log-level info] [-log-format text] [-slow-trace 0]
//	         [-trace-ring 0] [-max-active-traces 0]
//	         [-profile-sample 0] [-calibration fit.json] [-calibrate]
//	         [-pprof-addr 127.0.0.1:6060]
//
// Observability: every response carries an X-Eva-Trace id; GET /traces and
// GET /jobs/{id}/trace expose per-request span trees, GET /metrics serves a
// JSON report or (with ?format=prometheus) the Prometheus text exposition,
// -slow-trace logs a structured phase breakdown of slow requests, and
// -pprof-addr serves net/http/pprof on a separate (operator-only) listener.
//
// The per-instruction profiler samples every -profile-sample'th instruction
// of every execution (default every 16th) into per-(opcode, level)
// histograms, checks each sample against the compiler's scale/level
// expectations and the cost model's runtime prediction, and exposes the
// aggregate as GET /profile and eva_profile_* Prometheus families. With
// -data-dir the per-program profiles persist across restarts;
// `evaserve -data-dir DIR -calibrate` then fits per-opcode cost-model
// coefficients from everything recorded so far, saves the calibration (loaded
// automatically at the next start, and reflected in /compile predicted_ms),
// prints it, and exits. -calibration FILE installs a calibration from a JSON
// file instead.
//
// POST /jobs?coalesce=1 opts a submission into cross-request coalescing:
// compatible concurrent callers (same program and context, rotation-free,
// narrow input width) are packed into disjoint slot ranges of one shared
// execution — -coalesce-max bounds how many callers share a batch and
// -coalesce-wait bounds how long the first caller waits for company.
//
// -demo enables server-side key generation ("keygen" contexts): the server
// then holds secret keys and accepts plaintext values, which breaks the
// paper's threat model but makes curl-only walkthroughs and load tests
// possible. Without -demo, clients must generate keys locally and upload
// only public evaluation keys — the paper's deployment model.
//
// On SIGTERM/SIGINT the server shuts down gracefully: it stops admitting
// work, drains in-flight jobs for up to -drain-timeout (persisting their
// results), flushes the store, and exits.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"eva/internal/cluster"
	"eva/internal/obs"
	"eva/internal/profile"
	"eva/internal/serve"
	"eva/internal/store"
)

func main() {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	if err := run(os.Args[1:], os.Stdout, os.Stderr, sig, nil); err != nil {
		if err == flag.ErrHelp {
			return // -h is a successful invocation
		}
		fmt.Fprintln(os.Stderr, "evaserve:", err)
		os.Exit(1)
	}
}

// parsePeers parses "id=url,id=url" into a peer map.
func parsePeers(s string) (map[string]string, error) {
	peers := map[string]string{}
	if s == "" {
		return peers, nil
	}
	for _, part := range strings.Split(s, ",") {
		id, url, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || id == "" || url == "" {
			return nil, fmt.Errorf("bad -peers entry %q (want id=url)", part)
		}
		if _, dup := peers[id]; dup {
			return nil, fmt.Errorf("duplicate peer id %q", id)
		}
		peers[id] = strings.TrimRight(url, "/")
	}
	return peers, nil
}

// run executes the evaserve command line. It is the testable core of main:
// it binds the listener itself (so -addr :0 works and tests learn the bound
// address through the started callback), serves until the signal channel
// fires or the server fails, and returns errors instead of exiting.
func run(args []string, stdout, stderr io.Writer, sig <-chan os.Signal, started func(addr string)) error {
	fs := flag.NewFlagSet("evaserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr      = fs.String("addr", ":8080", "listen address")
		cache     = fs.Int("cache", 128, "compiled-program cache capacity")
		workers   = fs.Int("workers", 0, "default executor workers per batch (0 = GOMAXPROCS)")
		ringW     = fs.Int("ring-workers", 0, "RNS-limb worker pool shared by all executions (0 = GOMAXPROCS)")
		hoist     = fs.Bool("hoist-rotations", true, "batch shared-source rotations behind one hoisted decomposition")
		batches   = fs.Int("batches", 0, "max concurrent batches per request (0 = GOMAXPROCS)")
		contexts  = fs.Int("contexts", 256, "max retained execution contexts (LRU)")
		demo      = fs.Bool("demo", false, "enable server-side keygen (trusted demo mode)")
		jobW      = fs.Int("job-workers", 0, "async jobs executed concurrently (0 = 2)")
		jobQueue  = fs.Int("job-queue", 0, "async job queue depth (0 = 64)")
		jobMemMB  = fs.Int64("job-memory-mb", 0, "admitted-jobs ciphertext memory budget in MiB (0 = 8192)")
		resultTTL = fs.Duration("result-ttl", 0, "retention of finished jobs and unfetched results (0 = 2m)")
		coalMax   = fs.Int("coalesce-max", 0, "max callers packed into one coalesced batch (0 = 64)")
		coalWait  = fs.Duration("coalesce-wait", 0, "max wait for co-batched company before a coalesced batch runs (0 = 25ms)")
		resultRet = fs.Duration("result-retention", 0, "retention of persisted unfetched results in the store (0 = 24h, <0 = forever)")
		handleMB  = fs.Int64("handle-quota-mb", 0, "ciphertext handle store byte quota in MiB (0 = 4096)")
		handleRet = fs.Duration("handle-retention", 0, "retention of stored ciphertext handles (0 = 24h, <0 = forever)")
		routedRet = fs.Duration("routed-job-retention", 0, "cluster: retention of live routed-job records (0 = 24h)")
		retireRet = fs.Duration("retired-job-retention", 0, "cluster: retention of delivered/cancelled routed-job records (0 = 10m)")
		sweepInt  = fs.Duration("route-sweep-interval", 0, "cluster: min interval between routed-job sweeps (0 = 1m)")
		dataDir   = fs.String("data-dir", "", "durable artifact store directory (empty = in-memory only)")
		drainTO   = fs.Duration("drain-timeout", 30*time.Second, "how long a graceful shutdown waits for in-flight jobs")
		nodeID    = fs.String("node-id", "", "this node's id in a cluster (required with -peers)")
		peersFlag = fs.String("peers", "", "static cluster membership as id=url[,id=url...]")
		logLevel  = fs.String("log-level", "info", "log verbosity: debug, info, warn, or error")
		logFormat = fs.String("log-format", "text", "log output format: text or json")
		slowTrace = fs.Duration("slow-trace", 0, "log a structured phase breakdown for requests slower than this (0 = off)")
		traceRing = fs.Int("trace-ring", 0, "finished traces retained for GET /traces (0 = 256)")
		maxTraces = fs.Int("max-active-traces", 0, "in-flight traces tracked before shedding (0 = 4096)")
		profSamp  = fs.Int("profile-sample", 0, "instruction profiler stride: record every Nth instruction (0 = 16, 1 = all, <0 = off)")
		calibrate = fs.Bool("calibrate", false, "fit cost-model calibration from the profiles in -data-dir, save it, print it, and exit")
		calibFile = fs.String("calibration", "", "calibration JSON file to install at startup (overrides the store's copy)")
		pprofAddr = fs.String("pprof-addr", "", "serve net/http/pprof on this address (empty = off)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	peers, err := parsePeers(*peersFlag)
	if err != nil {
		return err
	}
	if len(peers) > 0 && *nodeID == "" {
		return fmt.Errorf("-peers requires -node-id")
	}
	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		return err
	}
	logger, err := obs.NewLogger(stderr, level, *logFormat)
	if err != nil {
		return err
	}

	var st store.Store
	if *dataDir != "" {
		fsStore, err := store.OpenFS(*dataDir)
		if err != nil {
			return err
		}
		st = fsStore
		defer fsStore.Close()
	}

	// -calibrate is an offline pass, not a server mode: fit per-opcode cost
	// coefficients from the per-program profiles the store has accumulated,
	// persist the result (servers on this data dir load it at startup), and
	// print the fit.
	if *calibrate {
		if st == nil {
			return fmt.Errorf("-calibrate requires -data-dir")
		}
		profiles, err := profile.LoadProfiles(st)
		if err != nil {
			return err
		}
		cal, err := profile.Fit(profiles)
		if err != nil {
			return err
		}
		if err := profile.SaveCalibration(st, cal); err != nil {
			return err
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(cal)
	}

	srv := serve.NewServer(serve.Config{
		CacheCapacity:        *cache,
		DefaultWorkers:       *workers,
		MaxConcurrentBatches: *batches,
		MaxContexts:          *contexts,
		AllowServerKeygen:    *demo,
		RingWorkers:          *ringW,
		DisableHoisting:      !*hoist,
		JobWorkers:           *jobW,
		JobQueueDepth:        *jobQueue,
		JobMemoryBudgetBytes: *jobMemMB << 20,
		JobResultTTL:         *resultTTL,
		CoalesceMaxBatch:     *coalMax,
		CoalesceMaxWait:      *coalWait,
		ResultRetention:      *resultRet,
		HandleQuotaBytes:     *handleMB << 20,
		HandleRetention:      *handleRet,
		Store:                st,
		NodeID:               *nodeID,
		Logger:               logger,
		SlowTraceThreshold:   *slowTrace,
		TraceCapacity:        *traceRing,
		MaxActiveTraces:      *maxTraces,
		ProfileSampleRate:    *profSamp,
		// Peer nodes replicate contexts through the bundle surface, which
		// for demo-keygen contexts includes the secret key and has no
		// node-to-node authentication — run a cluster only on a network
		// where every client is trusted (see README "Clustering &
		// persistence").
		AllowContextTransfer: len(peers) > 0,
	})
	defer srv.Close()

	if *calibFile != "" {
		data, err := os.ReadFile(*calibFile)
		if err != nil {
			return fmt.Errorf("-calibration: %w", err)
		}
		var cal profile.Calibration
		if err := json.Unmarshal(data, &cal); err != nil {
			return fmt.Errorf("-calibration %s: %w", *calibFile, err)
		}
		srv.Profiles().SetCalibration(&cal)
		logger.Info("calibration installed from file", slog.String("file", *calibFile), slog.Uint64("samples", cal.Samples))
	}

	handler := srv.Handler()
	if len(peers) > 0 {
		cl, err := cluster.New(srv, cluster.Config{
			Self:                *nodeID,
			Peers:               peers,
			Store:               st,
			Logger:              logger,
			RoutedJobRetention:  *routedRet,
			RetiredJobRetention: *retireRet,
			SweepInterval:       *sweepInt,
		})
		if err != nil {
			return err
		}
		defer cl.Close()
		handler = cl.Handler()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	// The profiler gets its own listener so it is never exposed on the
	// public API address: an operator opts in with -pprof-addr 127.0.0.1:0
	// (or a fixed port) and scrapes /debug/pprof/ there.
	if *pprofAddr != "" {
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			return fmt.Errorf("pprof listener: %w", err)
		}
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		pprofSrv := &http.Server{Handler: pmux, ReadHeaderTimeout: 10 * time.Second}
		go pprofSrv.Serve(pln)
		defer pprofSrv.Close()
		fmt.Fprintf(stdout, "evaserve pprof listening on %s\n", pln.Addr())
	}

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	mode := "standalone"
	if len(peers) > 0 {
		ids := append([]string{*nodeID}, keys(peers)...)
		sort.Strings(ids)
		mode = fmt.Sprintf("cluster node %s of %v", *nodeID, ids)
	}
	fmt.Fprintf(stdout, "evaserve listening on %s (demo mode: %v, durable: %v, %s)\n", ln.Addr(), *demo, st != nil, mode)
	logger.Info("evaserve started",
		slog.String("addr", ln.Addr().String()),
		slog.Bool("demo", *demo),
		slog.Bool("durable", st != nil),
		slog.String("mode", mode))
	if started != nil {
		started(ln.Addr().String())
	}

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
	case <-sig:
		// Graceful shutdown: stop admitting (close the listener and reject
		// new connections), drain in-flight jobs up to the timeout so their
		// results are persisted, then exit; the deferred store close
		// flushes whatever the drain produced.
		fmt.Fprintln(stdout, "evaserve: shutting down (draining jobs)")
		logger.Info("shutting down: draining jobs", slog.Duration("timeout", *drainTO))
		ctx, cancel := context.WithTimeout(context.Background(), *drainTO)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			logger.Warn("http shutdown", slog.String("error", err.Error()))
		}
		if err := srv.Drain(ctx); err != nil {
			fmt.Fprintf(stdout, "evaserve: drain cut %v in-flight work short\n", err)
			logger.Warn("drain cut in-flight work short", slog.String("error", err.Error()))
		} else {
			fmt.Fprintln(stdout, "evaserve: drained cleanly")
			logger.Info("drained cleanly")
		}
	}
	return nil
}

func keys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
