// Command evaserve runs the EVA compile-and-execute service: an HTTP JSON
// API over the full pipeline. Clients POST serialized EVA programs to
// /compile (compiled once per distinct program, cached in an LRU registry),
// install evaluation keys with POST /contexts, and run batches of encrypted
// inputs with POST /execute/{id}. GET /programs, /healthz and /metrics
// expose the registry, liveness, and request/cache/latency metrics.
//
// Usage:
//
//	evaserve [-addr :8080] [-cache 128] [-workers 0] [-batches 0] [-demo]
//
// -demo enables server-side key generation ("keygen" contexts): the server
// then holds secret keys and accepts plaintext values, which breaks the
// paper's threat model but makes curl-only walkthroughs and load tests
// possible. Without -demo, clients must generate keys locally and upload
// only public evaluation keys — the paper's deployment model.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"eva/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		cache    = flag.Int("cache", 128, "compiled-program cache capacity")
		workers  = flag.Int("workers", 0, "default executor workers per batch (0 = GOMAXPROCS)")
		batches  = flag.Int("batches", 0, "max concurrent batches per request (0 = GOMAXPROCS)")
		contexts = flag.Int("contexts", 256, "max retained execution contexts (LRU)")
		demo     = flag.Bool("demo", false, "enable server-side keygen (trusted demo mode)")
	)
	flag.Parse()

	srv := serve.NewServer(serve.Config{
		CacheCapacity:        *cache,
		DefaultWorkers:       *workers,
		MaxConcurrentBatches: *batches,
		MaxContexts:          *contexts,
		AllowServerKeygen:    *demo,
	})
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Printf("evaserve listening on %s (demo mode: %v)\n", *addr, *demo)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "evaserve:", err)
			os.Exit(1)
		}
	case <-sig:
		fmt.Println("evaserve: shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "evaserve: shutdown:", err)
			os.Exit(1)
		}
	}
}
