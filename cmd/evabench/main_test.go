package main

import (
	"io"
	"strings"
	"testing"
)

// TestRunTable3 is the smoke test for the cheapest table: the network
// inventory needs no encrypted execution, so it exercises the full
// flag-parsing and printing path in milliseconds.
func TestRunTable3(t *testing.T) {
	var out, errOut strings.Builder
	if err := run([]string{"-table", "3"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"Table 3", "LeNet-5-small", "SqueezeNet-CIFAR"} {
		if !strings.Contains(got, want) {
			t.Errorf("table 3 output missing %q:\n%s", want, got)
		}
	}
}

// TestRunTable8 runs the application suite end to end (encrypted execution
// included) on tiny instances, checking one full row renders.
func TestRunTable8(t *testing.T) {
	if testing.Short() {
		t.Skip("encrypted execution in -short mode")
	}
	var out strings.Builder
	if err := run([]string{"-table", "8", "-vec", "64", "-image", "4"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Table 8") {
		t.Errorf("missing Table 8 header:\n%s", out.String())
	}
}

func TestRunNoArgsErrors(t *testing.T) {
	var out, errOut strings.Builder
	if err := run(nil, &out, &errOut); err == nil {
		t.Fatal("expected an error when no table or figure is selected")
	}
	if !strings.Contains(errOut.String(), "Usage") && !strings.Contains(errOut.String(), "-table") {
		t.Errorf("usage not printed to stderr:\n%s", errOut.String())
	}
}

func TestRunBadFlags(t *testing.T) {
	if err := run([]string{"-nonsense"}, io.Discard, io.Discard); err == nil {
		t.Error("expected an error for an unknown flag")
	}
	if err := run([]string{"-figure", "7", "-threads", "0,banana"}, io.Discard, io.Discard); err == nil {
		t.Error("expected an error for a bad thread count")
	}
	if err := run([]string{"-table", "3", "-networks", "no-such-net"}, io.Discard, io.Discard); err == nil {
		t.Error("expected an error for an unmatched network filter")
	}
}
