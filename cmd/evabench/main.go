// Command evabench regenerates the tables and figures of the paper's
// evaluation (Section 8): Tables 3-8 and Figure 7. By default it uses the
// scaled-down network configuration (see DESIGN.md) so every experiment runs
// on a laptop; -full and -secure move toward the paper-scale setting.
//
// Usage:
//
//	evabench -table 5            # one table (3,4,5,6,7,8)
//	evabench -figure 7           # the strong-scaling figure
//	evabench -all                # everything
//	evabench -all -networks LeNet-5-small,Industrial -workers 8
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"

	"eva/internal/apps"
	"eva/internal/bench"
	"eva/internal/nn"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if err == flag.ErrHelp {
			return // -h is a successful invocation
		}
		fmt.Fprintln(os.Stderr, "evabench:", err)
		os.Exit(1)
	}
}

// run executes the evabench command line. It is the testable core of main:
// all output goes to the supplied writers and every failure is returned
// rather than exiting the process.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("evabench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		table    = fs.Int("table", 0, "regenerate one table (3-8)")
		figure   = fs.Int("figure", 0, "regenerate one figure (7)")
		all      = fs.Bool("all", false, "regenerate every table and figure")
		full     = fs.Bool("full", false, "use the paper-scale network configuration (slow)")
		secure   = fs.Bool("secure", false, "require 128-bit-secure parameters (paper setting; slower)")
		workers  = fs.Int("workers", 0, "executor threads (0 = GOMAXPROCS)")
		seed     = fs.Int64("seed", 1, "random seed")
		networks = fs.String("networks", "", "comma-separated subset of networks to evaluate")
		vecSize  = fs.Int("vec", 1024, "vector size for the Table 8 applications")
		imgSize  = fs.Int("image", 16, "image side for the Table 8 Sobel/Harris applications")
		threads  = fs.String("threads", "", "comma-separated thread counts for Figure 7 (default 1,2,4,GOMAXPROCS)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if !*all && *table == 0 && *figure == 0 {
		fs.Usage()
		return fmt.Errorf("nothing to do: pass -all, -table, or -figure")
	}

	opts := bench.DefaultOptions()
	opts.Secure = *secure
	opts.Workers = *workers
	opts.Seed = *seed
	if *full {
		opts.Config = nn.FullConfig()
	}

	nets, err := selectNetworks(opts.Config, *networks)
	if err != nil {
		return err
	}

	needNetworkRuns := *all || *table == 4 || *table == 5 || *table == 6 || *table == 7
	var results []*bench.NetworkResult
	if needNetworkRuns {
		for _, n := range nets {
			fmt.Fprintf(stderr, "running %s (EVA + CHET pipelines)...\n", n.Name)
			r, err := bench.RunNetwork(n, opts)
			if err != nil {
				return err
			}
			results = append(results, r)
		}
	}

	if *all || *table == 3 {
		bench.PrintTable3(stdout, opts.Config)
		fmt.Fprintln(stdout)
	}
	if *all || *table == 4 {
		bench.PrintTable4(stdout, results)
		fmt.Fprintln(stdout)
	}
	if *all || *table == 5 {
		w := opts.Workers
		if w <= 0 {
			w = runtime.GOMAXPROCS(0)
		}
		bench.PrintTable5(stdout, results, w)
		fmt.Fprintln(stdout)
	}
	if *all || *table == 6 {
		bench.PrintTable6(stdout, results)
		fmt.Fprintln(stdout)
	}
	if *all || *table == 7 {
		bench.PrintTable7(stdout, results)
		fmt.Fprintln(stdout)
	}
	if *all || *table == 8 {
		suite, err := apps.Suite(*vecSize, *imgSize)
		if err != nil {
			return err
		}
		var appResults []*bench.AppResult
		for _, app := range suite {
			fmt.Fprintf(stderr, "running %s...\n", app.Name)
			r, err := bench.RunApplication(app, opts)
			if err != nil {
				return err
			}
			appResults = append(appResults, r)
		}
		bench.PrintTable8(stdout, appResults)
		fmt.Fprintln(stdout)
	}
	if *all || *figure == 7 {
		counts, err := parseThreads(*threads)
		if err != nil {
			return err
		}
		var points []bench.ScalingPoint
		scalingNets := nets
		if *networks == "" {
			// The paper's Figure 7 omits LeNet-5-small (too fast to scale).
			scalingNets = nil
			for _, n := range nets {
				if n.Name != "LeNet-5-small" {
					scalingNets = append(scalingNets, n)
				}
			}
		}
		for _, n := range scalingNets {
			fmt.Fprintf(stderr, "scaling %s over threads %v...\n", n.Name, counts)
			p, err := bench.RunScaling(n, counts, opts)
			if err != nil {
				return err
			}
			points = append(points, p...)
		}
		bench.PrintFigure7(stdout, points)
	}
	return nil
}

func selectNetworks(cfg nn.Config, filter string) ([]*nn.Network, error) {
	all := nn.All(cfg)
	if filter == "" {
		return all, nil
	}
	want := map[string]bool{}
	for _, name := range strings.Split(filter, ",") {
		want[strings.TrimSpace(strings.ToLower(name))] = true
	}
	var out []*nn.Network
	for _, n := range all {
		if want[strings.ToLower(n.Name)] {
			out = append(out, n)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no networks match %q", filter)
	}
	return out, nil
}

func parseThreads(s string) ([]int, error) {
	if s == "" {
		maxThreads := runtime.GOMAXPROCS(0)
		counts := []int{1, 2, 4}
		if maxThreads > 4 {
			counts = append(counts, maxThreads)
		}
		return counts, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		var v int
		if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d", &v); err != nil || v <= 0 {
			return nil, fmt.Errorf("bad thread count %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}
