// Command evarun executes one of the built-in EVA applications end to end:
// it builds the program, compiles it, generates keys, encrypts random inputs,
// runs the program homomorphically, decrypts the outputs, and reports timing
// and the maximum error against the unencrypted reference execution.
//
// Usage:
//
//	evarun -app sobel [-image 16] [-vec 1024] [-workers 4] [-secure]
//
// Applications: pathlength, linear, polynomial, multivariate, sobel, harris.
package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"time"

	"eva/internal/apps"
	"eva/internal/ckks"
	"eva/internal/compile"
	"eva/internal/execute"
)

func main() {
	var (
		appName   = flag.String("app", "sobel", "application: pathlength, linear, polynomial, multivariate, sobel, harris")
		imageSize = flag.Int("image", 16, "image side length for sobel/harris (power of two)")
		vecSize   = flag.Int("vec", 1024, "vector size for the non-image applications (power of two)")
		workers   = flag.Int("workers", 0, "executor worker threads (0 = GOMAXPROCS)")
		secure    = flag.Bool("secure", false, "require 128-bit-secure encryption parameters")
		seed      = flag.Int64("seed", 1, "random seed for inputs and keys")
	)
	flag.Parse()

	app, err := makeApp(*appName, *vecSize, *imageSize)
	if err != nil {
		fail(err)
	}
	fmt.Printf("application: %s (vector size %d)\n", app.Name, app.Program.VecSize)

	rng := rand.New(rand.NewSource(*seed))
	inputs := app.MakeInputs(rng)
	want := app.Plain(inputs)

	opts := compile.DefaultOptions()
	opts.AllowInsecure = !*secure
	start := time.Now()
	res, err := compile.Compile(app.Program, opts)
	if err != nil {
		fail(err)
	}
	fmt.Printf("compiled in %v: %s\n", time.Since(start).Round(time.Millisecond), res.Summary())

	prng := ckks.NewTestPRNG(uint64(*seed))
	ctx, keys, err := execute.NewContext(res, prng)
	if err != nil {
		fail(err)
	}
	fmt.Printf("encryption context (keys for %d rotations) in %v\n", len(res.RotationSteps), ctx.KeyGenTime.Round(time.Millisecond))

	enc, err := execute.EncryptInputs(ctx, res, keys, inputs, prng)
	if err != nil {
		fail(err)
	}
	fmt.Printf("inputs encrypted in %v\n", enc.EncryptTime.Round(time.Millisecond))

	out, err := execute.Run(ctx, res, enc, execute.RunOptions{Workers: *workers, Scheduler: execute.SchedulerParallel})
	if err != nil {
		fail(err)
	}
	fmt.Printf("homomorphic execution: %v (%d instructions, %d workers, peak %d live values, %d values reused)\n",
		out.Stats.WallTime.Round(time.Millisecond), out.Stats.Instructions, out.Stats.Workers,
		out.Stats.PeakLiveValues, out.Stats.ReusedValues)

	dec, decTime := execute.DecryptOutputs(ctx, res, keys, out)
	fmt.Printf("outputs decrypted in %v\n", decTime.Round(time.Millisecond))

	maxErr := 0.0
	for name, w := range want {
		for i := range w {
			if e := math.Abs(dec[name][i] - w[i]); e > maxErr {
				maxErr = e
			}
		}
	}
	fmt.Printf("maximum error vs unencrypted reference: %.3e\n", maxErr)
	for name, values := range dec {
		n := 4
		if len(values) < n {
			n = len(values)
		}
		fmt.Printf("output %-10s first slots: %v\n", name, round(values[:n]))
	}
}

func makeApp(name string, vecSize, imageSize int) (*apps.App, error) {
	switch name {
	case "pathlength":
		return apps.PathLength3D(vecSize)
	case "linear":
		return apps.LinearRegression(vecSize)
	case "polynomial":
		return apps.PolynomialRegression(vecSize)
	case "multivariate":
		return apps.MultivariateRegression(vecSize, 4)
	case "sobel":
		return apps.SobelFilter(imageSize)
	case "harris":
		return apps.HarrisCornerDetection(imageSize)
	}
	return nil, fmt.Errorf("unknown application %q", name)
}

func round(v []float64) []float64 {
	out := make([]float64, len(v))
	for i := range v {
		out[i] = math.Round(v[i]*1e4) / 1e4
	}
	return out
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "evarun:", err)
	os.Exit(1)
}
