// Command evarun executes one of the built-in EVA applications end to end:
// it builds the program, compiles it, generates keys, encrypts random inputs,
// runs the program homomorphically, decrypts the outputs, and reports timing
// and the maximum error against the unencrypted reference execution.
//
// Usage:
//
//	evarun -app sobel [-image 16] [-vec 1024] [-workers 4] [-secure]
//
// Applications: pathlength, linear, polynomial, multivariate, sobel, harris.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"time"

	"eva/internal/apps"
	"eva/internal/ckks"
	"eva/internal/compile"
	"eva/internal/execute"
)

// errFlagParse marks a command-line parse failure the FlagSet already
// reported (with usage) to stderr, so main must not print it again.
var errFlagParse = errors.New("invalid command line")

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if !errors.Is(err, errFlagParse) {
			fmt.Fprintln(os.Stderr, "evarun:", err)
		}
		os.Exit(1)
	}
}

// run is the whole tool; main only maps its error to the exit status, so
// tests can drive the real command line in-process. Reports go to stdout,
// flag-parse diagnostics and usage to stderr.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("evarun", flag.ContinueOnError)
	var (
		appName   = fs.String("app", "sobel", "application: pathlength, linear, polynomial, multivariate, sobel, harris")
		imageSize = fs.Int("image", 16, "image side length for sobel/harris (power of two)")
		vecSize   = fs.Int("vec", 1024, "vector size for the non-image applications (power of two)")
		workers   = fs.Int("workers", 0, "executor worker threads (0 = GOMAXPROCS)")
		secure    = fs.Bool("secure", false, "require 128-bit-secure encryption parameters")
		seed      = fs.Int64("seed", 1, "random seed for inputs and keys")
	)
	fs.SetOutput(stderr)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return errFlagParse
	}

	app, err := makeApp(*appName, *vecSize, *imageSize)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "application: %s (vector size %d)\n", app.Name, app.Program.VecSize)

	rng := rand.New(rand.NewSource(*seed))
	inputs := app.MakeInputs(rng)
	want := app.Plain(inputs)

	opts := compile.DefaultOptions()
	opts.AllowInsecure = !*secure
	start := time.Now()
	res, err := compile.Compile(app.Program, opts)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "compiled in %v: %s\n", time.Since(start).Round(time.Millisecond), res.Summary())

	prng := ckks.NewTestPRNG(uint64(*seed))
	ctx, keys, err := execute.NewContext(res, prng)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "encryption context (keys for %d rotations) in %v\n", len(res.RotationSteps), ctx.KeyGenTime.Round(time.Millisecond))

	enc, err := execute.EncryptInputs(ctx, res, keys, inputs, prng)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "inputs encrypted in %v\n", enc.EncryptTime.Round(time.Millisecond))

	out, err := execute.Run(ctx, res, enc, execute.RunOptions{Workers: *workers, Scheduler: execute.SchedulerParallel})
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "homomorphic execution: %v (%d instructions, %d workers, peak %d live values, %d values reused)\n",
		out.Stats.WallTime.Round(time.Millisecond), out.Stats.Instructions, out.Stats.Workers,
		out.Stats.PeakLiveValues, out.Stats.ReusedValues)

	dec, decTime := execute.DecryptOutputs(ctx, res, keys, out)
	fmt.Fprintf(stdout, "outputs decrypted in %v\n", decTime.Round(time.Millisecond))

	maxErr := 0.0
	for name, w := range want {
		for i := range w {
			if e := math.Abs(dec[name][i] - w[i]); e > maxErr {
				maxErr = e
			}
		}
	}
	fmt.Fprintf(stdout, "maximum error vs unencrypted reference: %.3e\n", maxErr)
	for name, values := range dec {
		n := 4
		if len(values) < n {
			n = len(values)
		}
		fmt.Fprintf(stdout, "output %-10s first slots: %v\n", name, round(values[:n]))
	}
	return nil
}

func makeApp(name string, vecSize, imageSize int) (*apps.App, error) {
	switch name {
	case "pathlength":
		return apps.PathLength3D(vecSize)
	case "linear":
		return apps.LinearRegression(vecSize)
	case "polynomial":
		return apps.PolynomialRegression(vecSize)
	case "multivariate":
		return apps.MultivariateRegression(vecSize, 4)
	case "sobel":
		return apps.SobelFilter(imageSize)
	case "harris":
		return apps.HarrisCornerDetection(imageSize)
	}
	return nil, fmt.Errorf("unknown application %q", name)
}

func round(v []float64) []float64 {
	out := make([]float64, len(v))
	for i := range v {
		out[i] = math.Round(v[i]*1e4) / 1e4
	}
	return out
}
