package main

import (
	"io"
	"strings"
	"testing"
)

// TestRunLinearRegression drives the real command line end to end on the
// smallest application: build, compile, keygen, encrypt, execute, decrypt.
func TestRunLinearRegression(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-app", "linear", "-vec", "16", "-workers", "2"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"application: Linear Regression",
		"compiled in",
		"homomorphic execution:",
		"maximum error vs unencrypted reference:",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunUnknownApp(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-app", "nonsense"}, &out, io.Discard); err == nil {
		t.Error("unknown application accepted")
	}
}
