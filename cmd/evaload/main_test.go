package main

import (
	"strings"
	"testing"
)

// TestLoadSmoke drives a small in-process load end to end: every job must
// complete and deliver its result.
func TestLoadSmoke(t *testing.T) {
	var stdout, stderr strings.Builder
	err := run([]string{"-jobs", "6", "-concurrency", "3", "-batches", "2"}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("run: %v\nstderr: %s", err, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "completed 6/6 jobs") {
		t.Errorf("missing completion line:\n%s", out)
	}
	if !strings.Contains(out, "0 lost") {
		t.Errorf("missing lost count:\n%s", out)
	}
	if !strings.Contains(out, "latency p50") {
		t.Errorf("missing percentile line:\n%s", out)
	}
}

// TestLoadProfileSmoke is the nightly profiler assertion: with full
// sampling, the post-run profile fetch must show samples and produce a
// non-empty calibration fit.
func TestLoadProfileSmoke(t *testing.T) {
	var stdout, stderr strings.Builder
	err := run([]string{"-jobs", "4", "-concurrency", "2", "-batches", "1",
		"-profile-sample", "1", "-profile"}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("run: %v\nstderr: %s", err, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "profile:") || strings.Contains(out, "0 sampled") {
		t.Errorf("missing profile summary:\n%s", out)
	}
	if !strings.Contains(out, "calibration fit") || !strings.Contains(out, "ns/unit") {
		t.Errorf("missing calibration fit:\n%s", out)
	}
	if !strings.Contains(out, "MULTIPLY") {
		t.Errorf("fit names no opcodes:\n%s", out)
	}
}

// TestLoadSurvivesTinyQueue: with a deliberately starved queue the load
// generator must absorb 429s via Retry-After and still lose nothing.
func TestLoadSurvivesTinyQueue(t *testing.T) {
	var stdout, stderr strings.Builder
	err := run([]string{"-jobs", "8", "-concurrency", "8", "-batches", "1",
		"-job-workers", "1", "-job-queue", "1"}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("run: %v\nstderr: %s", err, stderr.String())
	}
	if !strings.Contains(stdout.String(), "completed 8/8 jobs") {
		t.Errorf("not all jobs completed:\n%s", stdout.String())
	}
}

// TestClusterSmoke drives a 3-node in-process cluster through a router
// node: every job crosses the ring and none may be lost.
func TestClusterSmoke(t *testing.T) {
	var stdout, stderr strings.Builder
	err := run([]string{"-cluster", "3", "-jobs", "6", "-concurrency", "3", "-batches", "2"}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("run: %v\nstdout: %s\nstderr: %s", err, stdout.String(), stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "completed 6/6 jobs") || !strings.Contains(out, "0 lost") {
		t.Errorf("cluster run incomplete:\n%s", out)
	}
	if !strings.Contains(out, "routing via") {
		t.Errorf("no routing line:\n%s", out)
	}
}

// TestClusterKillOwnerSmoke is the owner-failover smoke: the context's
// owner is killed a quarter of the way through and the run must still lose
// zero results.
func TestClusterKillOwnerSmoke(t *testing.T) {
	var stdout, stderr strings.Builder
	err := run([]string{"-cluster", "3", "-kill-owner", "-jobs", "8", "-concurrency", "4", "-batches", "2"}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("run: %v\nstdout: %s\nstderr: %s", err, stdout.String(), stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "completed 8/8 jobs") || !strings.Contains(out, "0 lost") {
		t.Errorf("kill-owner run incomplete:\n%s", out)
	}
	if !strings.Contains(out, "killing owner") {
		t.Errorf("owner was never killed:\n%s", out)
	}
}

func TestClusterFlagValidation(t *testing.T) {
	var stdout, stderr strings.Builder
	if err := run([]string{"-cluster", "1"}, &stdout, &stderr); err == nil {
		t.Error("-cluster 1 accepted")
	}
	if err := run([]string{"-kill-owner"}, &stdout, &stderr); err == nil {
		t.Error("-kill-owner without -cluster accepted")
	}
	if err := run([]string{"-cluster", "3", "-addr", "http://x"}, &stdout, &stderr); err == nil {
		t.Error("-cluster with -addr accepted")
	}
}

func TestBadFlags(t *testing.T) {
	var stdout, stderr strings.Builder
	if err := run([]string{"-definitely-not-a-flag"}, &stdout, &stderr); err == nil {
		t.Fatal("bad flag accepted")
	}
}
