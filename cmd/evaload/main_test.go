package main

import (
	"strings"
	"testing"
)

// TestLoadSmoke drives a small in-process load end to end: every job must
// complete and deliver its result.
func TestLoadSmoke(t *testing.T) {
	var stdout, stderr strings.Builder
	err := run([]string{"-jobs", "6", "-concurrency", "3", "-batches", "2"}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("run: %v\nstderr: %s", err, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "completed 6/6 jobs") {
		t.Errorf("missing completion line:\n%s", out)
	}
	if !strings.Contains(out, "0 lost") {
		t.Errorf("missing lost count:\n%s", out)
	}
	if !strings.Contains(out, "latency p50") {
		t.Errorf("missing percentile line:\n%s", out)
	}
}

// TestLoadSurvivesTinyQueue: with a deliberately starved queue the load
// generator must absorb 429s via Retry-After and still lose nothing.
func TestLoadSurvivesTinyQueue(t *testing.T) {
	var stdout, stderr strings.Builder
	err := run([]string{"-jobs", "8", "-concurrency", "8", "-batches", "1",
		"-job-workers", "1", "-job-queue", "1"}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("run: %v\nstderr: %s", err, stderr.String())
	}
	if !strings.Contains(stdout.String(), "completed 8/8 jobs") {
		t.Errorf("not all jobs completed:\n%s", stdout.String())
	}
}

func TestBadFlags(t *testing.T) {
	var stdout, stderr strings.Builder
	if err := run([]string{"-definitely-not-a-flag"}, &stdout, &stderr); err == nil {
		t.Fatal("bad flag accepted")
	}
}
