// Command evaload is a load generator for the evaserve jobs API: it drives N
// concurrent asynchronous jobs end to end (submit → stream progress → fetch
// result), retries submissions the server sheds with 429 + Retry-After, and
// prints throughput and latency percentiles. CI's nightly load smoke runs it
// against an in-process server; with -addr it targets a live evaserve
// running in -demo mode.
//
// Usage:
//
//	evaload [-addr http://host:8080] [-jobs 50] [-concurrency 8] [-batches 2]
//	        [-job-workers 2] [-job-queue 64] [-job-memory-mb 512]
//
// With no -addr, evaload starts an in-process evaserve (demo mode) on a
// loopback port and drives that, making it a self-contained smoke test: it
// exits non-zero if any job loses its result or fails.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"eva/eva"
	"eva/internal/serve"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if err == flag.ErrHelp {
			return // -h is a successful invocation
		}
		fmt.Fprintln(os.Stderr, "evaload:", err)
		os.Exit(1)
	}
}

// loadSource is the program every job executes: a squaring (relinearize +
// rescale), a rotation (Galois key), and a cipher-plain product — the same
// opcode classes the e2e tests exercise, heavy enough that a job does real
// backend work.
const loadSource = `program load vec=8;
input x @30;
input y @30;
s = x * x + y;
r = rotl(s, 1);
out = (s + r) * 0.5@30;
output out @30;`

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("evaload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr        = fs.String("addr", "", "evaserve base URL (empty = start an in-process demo server)")
		jobCount    = fs.Int("jobs", 50, "total jobs to run")
		concurrency = fs.Int("concurrency", 8, "jobs in flight at once")
		batches     = fs.Int("batches", 2, "batches per job")
		timeout     = fs.Duration("timeout", 10*time.Minute, "overall deadline")
		jobWorkers  = fs.Int("job-workers", 0, "in-process server: async job workers (0 = 2)")
		jobQueue    = fs.Int("job-queue", 0, "in-process server: job queue depth (0 = 64)")
		jobMemMB    = fs.Int64("job-memory-mb", 0, "in-process server: job memory budget in MiB (0 = 8192)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	base := *addr
	if base == "" {
		srv := serve.NewServer(serve.Config{
			AllowServerKeygen:    true,
			JobWorkers:           *jobWorkers,
			JobQueueDepth:        *jobQueue,
			JobMemoryBudgetBytes: *jobMemMB << 20,
		})
		defer srv.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		httpSrv := &http.Server{Handler: srv.Handler()}
		go httpSrv.Serve(ln)
		defer httpSrv.Close()
		base = "http://" + ln.Addr().String()
		fmt.Fprintf(stdout, "in-process evaserve on %s\n", base)
	}
	client := eva.NewClient(base)

	comp, err := client.Compile(ctx, eva.CompileRequest{
		Source:  loadSource,
		Options: &serve.CompileOptionsJSON{AllowInsecure: true},
	})
	if err != nil {
		return fmt.Errorf("compile: %w", err)
	}
	ectx, err := client.NewKeygenContext(ctx, comp.ID, 42)
	if err != nil {
		return fmt.Errorf("context (the server must run -demo): %w", err)
	}
	fmt.Fprintf(stdout, "program %s, context %s, %d jobs x %d batches, concurrency %d\n",
		comp.ID, ectx.ContextID, *jobCount, *batches, *concurrency)

	outcomes := make([]outcome, *jobCount)
	sem := make(chan struct{}, max(1, *concurrency))
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < *jobCount; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			outcomes[i] = runJob(ctx, client, comp.ID, ectx.ContextID, *batches, i)
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var latencies []time.Duration
	var waits []float64
	completed, lost, retries := 0, 0, 0
	for i, o := range outcomes {
		retries += o.retries
		if o.err != nil {
			lost++
			fmt.Fprintf(stderr, "job %d: %v\n", i, o.err)
			continue
		}
		completed++
		latencies = append(latencies, o.latency)
		waits = append(waits, o.wait)
	}

	fmt.Fprintf(stdout, "completed %d/%d jobs in %.2fs (%.1f jobs/s), %d shed-retries, %d lost\n",
		completed, *jobCount, elapsed.Seconds(), float64(completed)/elapsed.Seconds(), retries, lost)
	if len(latencies) > 0 {
		sort.Slice(latencies, func(a, b int) bool { return latencies[a] < latencies[b] })
		sort.Float64s(waits)
		fmt.Fprintf(stdout, "latency p50 %.1fms  p90 %.1fms  p99 %.1fms  max %.1fms\n",
			ms(pct(latencies, 0.50)), ms(pct(latencies, 0.90)), ms(pct(latencies, 0.99)), ms(latencies[len(latencies)-1]))
		fmt.Fprintf(stdout, "queue wait p50 %.1fms  p90 %.1fms\n",
			pct(waits, 0.50), pct(waits, 0.90))
	}
	if lost > 0 {
		return fmt.Errorf("%d of %d jobs lost their results", lost, *jobCount)
	}
	return nil
}

// runJob drives one job end to end, retrying shed submissions.
func runJob(ctx context.Context, client *eva.Client, programID, contextID string, batches, seed int) outcome {
	req := eva.JobRequest{ProgramID: programID, ContextID: contextID}
	for b := 0; b < batches; b++ {
		v := float64(seed%7 + b + 1)
		req.Batches = append(req.Batches, eva.ExecuteBatch{
			Values: map[string][]float64{
				"x": {v, v + 1, v + 2, v + 3, v + 4, v + 5, v + 6, v + 7},
				"y": {1, 2, 3, 4, 5, 6, 7, 8},
			},
		})
	}
	start := time.Now()
	var status eva.JobStatusInfo
	retries := 0
	for {
		var err error
		status, err = client.SubmitJob(ctx, req)
		if err == nil {
			break
		}
		if apiErr, ok := err.(*eva.APIError); ok && apiErr.Overloaded() {
			retries++
			backoff := apiErr.RetryAfter
			if backoff <= 0 {
				backoff = 100 * time.Millisecond
			}
			select {
			case <-ctx.Done():
				return outcome{retries: retries, err: ctx.Err()}
			case <-time.After(backoff):
			}
			continue
		}
		return outcome{retries: retries, err: fmt.Errorf("submit: %w", err)}
	}
	final, err := client.WaitJob(ctx, status.JobID)
	if err != nil {
		return outcome{retries: retries, err: fmt.Errorf("wait: %w", err)}
	}
	if final.Status != "done" {
		return outcome{retries: retries, err: fmt.Errorf("terminal status %q: %s", final.Status, final.Error)}
	}
	res, err := client.FetchJobResult(ctx, status.JobID)
	if err != nil {
		return outcome{retries: retries, err: fmt.Errorf("fetch: %w", err)}
	}
	if len(res.Results) != batches {
		return outcome{retries: retries, err: fmt.Errorf("%d results; want %d", len(res.Results), batches)}
	}
	for i, br := range res.Results {
		if br.Error != "" {
			return outcome{retries: retries, err: fmt.Errorf("batch %d: %s", i, br.Error)}
		}
		out := br.Values["out"]
		if len(out) == 0 || math.IsNaN(out[0]) {
			return outcome{retries: retries, err: fmt.Errorf("batch %d: missing output", i)}
		}
	}
	return outcome{latency: time.Since(start), wait: final.WaitMillis, retries: retries}
}

// outcome is the result of driving one job end to end.
type outcome struct {
	latency time.Duration
	wait    float64
	retries int
	err     error
}

// pct returns the q-quantile of an ascending-sorted slice (nearest-rank).
func pct[T time.Duration | float64](sorted []T, q float64) T {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
