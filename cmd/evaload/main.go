// Command evaload is a load generator for the evaserve jobs API: it drives N
// concurrent asynchronous jobs end to end (submit → stream progress → fetch
// result), retries submissions the server sheds with 429 + Retry-After, and
// prints throughput and latency percentiles. CI's nightly load smoke runs it
// against an in-process server; with -addr it targets a live evaserve
// running in -demo mode.
//
// Usage:
//
//	evaload [-addr http://host:8080] [-jobs 50] [-concurrency 8] [-batches 2]
//	        [-job-workers 2] [-job-queue 64] [-job-memory-mb 512]
//	        [-coalesce] [-pipeline] [-cluster 0] [-kill-owner] [-trace]
//	        [-profile-sample 0] [-profile]
//
// With -trace, evaload ends the run by fetching the slowest completed job's
// server-side trace (GET /jobs/{id}/trace) and printing its span tree — the
// phase breakdown of where that job's latency went (queue wait, per-opcode
// execution, store write; routing hops in cluster mode).
//
// With -profile, evaload ends the run by fetching the server's
// per-instruction profile (GET /profile; the merged cluster view under
// -cluster), printing the hottest per-opcode buckets and any scale/level/cost
// drift, and fitting a cost-model calibration from the recorded samples; the
// run fails if the profiler recorded nothing or the fit comes back empty.
// -profile-sample sets the in-process server's sampling stride (1 = every
// instruction, as the nightly smoke runs it).
//
// With no -addr, evaload starts an in-process evaserve (demo mode) on a
// loopback port and drives that, making it a self-contained smoke test: it
// exits non-zero if any job loses its result or fails.
//
// With -coalesce, evaload benchmarks the request coalescer: it drives the
// same narrow-width rotation-free program first through the plain jobs API
// (one execution per request) and then through POST /jobs?coalesce=1 (up to
// 8 concurrent callers packed into one shared execution), verifies every
// caller's results against the cleartext reference in both phases, and
// reports amortized per-request latency percentiles, throughput, and the
// coalesced-over-unbatched speedup plus the server's occupancy metrics.
//
// With -pipeline, evaload smokes the encrypted pipeline endpoint: it submits
// a two-stage chain (stage 2 consumes stage 1's output handle server-side),
// verifies the decrypted final result against the cleartext reference, and
// then submits an over-deep chain that the chaining checker must reject at
// submit with a structured 422.
//
// With -cluster N (N >= 2), evaload instead boots an in-process N-node
// evaserve cluster (each node durable in its own temp directory) and drives
// the load through a router node that does not own the test context, so
// every job is forwarded across the ring. Adding -kill-owner kills the
// context's owner node after a quarter of the jobs have finished: the
// surviving replica must absorb the requeued jobs and the run must still
// end with zero lost results — the nightly owner-failover smoke.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"eva/eva"
	"eva/internal/cluster"
	"eva/internal/obs"
	"eva/internal/profile"
	"eva/internal/serve"
	"eva/internal/store"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if err == flag.ErrHelp {
			return // -h is a successful invocation
		}
		fmt.Fprintln(os.Stderr, "evaload:", err)
		os.Exit(1)
	}
}

// loadSource is the program every job executes: a squaring (relinearize +
// rescale), a rotation (Galois key), and a cipher-plain product — the same
// opcode classes the e2e tests exercise, heavy enough that a job does real
// backend work.
const loadSource = `program load vec=8;
input x @30;
input y @30;
s = x * x + y;
r = rotl(s, 1);
out = (s + r) * 0.5@30;
output out @30;`

// coalesceSource is the program the -coalesce benchmark drives: width-8
// inputs in a 64-slot vector give the coalescer a capacity of 8 callers per
// shared batch, and the squaring keeps relinearize + rescale on the hot
// path. loadSource itself rotates, which coalescing forbids (rotations would
// mix co-batched callers' slot ranges).
const coalesceSource = `program coalesce vec=64;
input x width=8 @30;
input y width=8 @30;
s = x * x + y;
out = s * 0.5@30;
output out @30;`

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("evaload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr        = fs.String("addr", "", "evaserve base URL (empty = start an in-process demo server)")
		jobCount    = fs.Int("jobs", 50, "total jobs to run")
		concurrency = fs.Int("concurrency", 8, "jobs in flight at once")
		batches     = fs.Int("batches", 2, "batches per job")
		timeout     = fs.Duration("timeout", 10*time.Minute, "overall deadline")
		jobWorkers  = fs.Int("job-workers", 0, "in-process server: async job workers (0 = 2)")
		jobQueue    = fs.Int("job-queue", 0, "in-process server: job queue depth (0 = 64)")
		jobMemMB    = fs.Int64("job-memory-mb", 0, "in-process server: job memory budget in MiB (0 = 8192)")
		clusterN    = fs.Int("cluster", 0, "boot an in-process N-node cluster and drive it through a router (0 = single node)")
		killOwner   = fs.Bool("kill-owner", false, "cluster mode: kill the context owner after 25% of jobs complete")
		coalesce    = fs.Bool("coalesce", false, "benchmark POST /jobs?coalesce=1 against the unbatched jobs API")
		pipeline    = fs.Bool("pipeline", false, "smoke POST /pipelines: a two-stage encrypted chain verified against the cleartext reference, plus an incompatible chain rejected with 422")
		traceFlag   = fs.Bool("trace", false, "after the run, print the slowest job's phase breakdown from its server-side trace")
		profSample  = fs.Int("profile-sample", 0, "in-process server: instruction profiler stride (0 = 16, 1 = all, <0 = off)")
		profFlag    = fs.Bool("profile", false, "after the run, fetch /profile, print the per-opcode breakdown, and fit a calibration from it (fails if the fit is empty)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	if *clusterN != 0 && *addr != "" {
		return fmt.Errorf("-cluster starts its own in-process nodes; drop -addr")
	}
	if *coalesce && *clusterN != 0 {
		return fmt.Errorf("-coalesce measures a single node; drop -cluster")
	}
	if *clusterN != 0 && *clusterN < 2 {
		return fmt.Errorf("-cluster needs at least 2 nodes")
	}
	if *killOwner && *clusterN == 0 {
		return fmt.Errorf("-kill-owner needs -cluster")
	}

	srvCfg := serve.Config{
		AllowServerKeygen:    true,
		JobWorkers:           *jobWorkers,
		JobQueueDepth:        *jobQueue,
		JobMemoryBudgetBytes: *jobMemMB << 20,
		ProfileSampleRate:    *profSample,
	}

	var client *eva.Client
	var nodes []*loadNode
	switch {
	case *clusterN > 0:
		var err error
		if nodes, err = startCluster(stdout, *clusterN, srvCfg); err != nil {
			return err
		}
		defer func() {
			for _, n := range nodes {
				n.stop()
			}
		}()
		client = nodes[0].client // placement is refined after the context exists
	case *addr == "":
		node, err := startNode(srvCfg, "", nil, "")
		if err != nil {
			return err
		}
		defer node.stop()
		nodes = []*loadNode{node}
		client = node.client
		fmt.Fprintf(stdout, "in-process evaserve on %s\n", node.url)
	default:
		client = eva.NewClient(*addr)
	}

	if *coalesce {
		return runCoalesceBench(ctx, stdout, client, *jobCount, *concurrency)
	}
	if *pipeline {
		return runPipelineSmoke(ctx, stdout, client)
	}

	comp, err := client.Compile(ctx, eva.CompileRequest{
		Source:  loadSource,
		Options: &serve.CompileOptionsJSON{AllowInsecure: true},
	})
	if err != nil {
		return fmt.Errorf("compile: %w", err)
	}
	ectx, err := client.NewKeygenContext(ctx, comp.ID, 42)
	if err != nil {
		return fmt.Errorf("context (the server must run -demo): %w", err)
	}

	// Cluster mode: route the load through a node that does NOT own the
	// context, so every job crosses the ring; with -kill-owner, arm the
	// owner's execution.
	var owner *loadNode
	var completedCount atomic.Int64
	if *clusterN > 0 {
		candidates := nodes[0].cluster.ContextCandidates(ectx.ContextID)
		ownerID := candidates[0]
		isCandidate := map[string]bool{}
		for _, c := range candidates {
			isCandidate[c] = true
		}
		var router *loadNode
		for _, n := range nodes {
			if n.id == ownerID {
				owner = n
			}
			// Prefer a router outside the candidate set so every request
			// crosses the ring; fall back to the replica.
			if n.id != ownerID && (router == nil || !isCandidate[n.id] && isCandidate[router.id]) {
				router = n
			}
		}
		if router == nil || owner == nil {
			return fmt.Errorf("cluster: could not pick a router distinct from owner %s", ownerID)
		}
		client = router.client
		fmt.Fprintf(stdout, "cluster: context %s owned by %s (replicas %v), routing via %s\n",
			ectx.ContextID, ownerID, candidates[1:], router.id)
		if *killOwner {
			threshold := int64(*jobCount / 4)
			go func() {
				for completedCount.Load() < threshold {
					select {
					case <-ctx.Done():
						return
					case <-time.After(10 * time.Millisecond):
					}
				}
				fmt.Fprintf(stdout, "cluster: killing owner %s after %d jobs completed\n", owner.id, completedCount.Load())
				owner.stop()
			}()
		}
	}

	fmt.Fprintf(stdout, "program %s, context %s, %d jobs x %d batches, concurrency %d\n",
		comp.ID, ectx.ContextID, *jobCount, *batches, *concurrency)

	outcomes := make([]outcome, *jobCount)
	sem := make(chan struct{}, max(1, *concurrency))
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < *jobCount; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			outcomes[i] = runJob(ctx, client, comp.ID, ectx.ContextID, *batches, i)
			if outcomes[i].err == nil {
				completedCount.Add(1)
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var latencies []time.Duration
	var waits []float64
	completed, lost, retries := 0, 0, 0
	for i, o := range outcomes {
		retries += o.retries
		if o.err != nil {
			lost++
			fmt.Fprintf(stderr, "job %d: %v\n", i, o.err)
			continue
		}
		completed++
		latencies = append(latencies, o.latency)
		waits = append(waits, o.wait)
	}

	fmt.Fprintf(stdout, "completed %d/%d jobs in %.2fs (%.1f jobs/s), %d shed-retries, %d lost\n",
		completed, *jobCount, elapsed.Seconds(), float64(completed)/elapsed.Seconds(), retries, lost)
	if len(latencies) > 0 {
		sort.Slice(latencies, func(a, b int) bool { return latencies[a] < latencies[b] })
		sort.Float64s(waits)
		fmt.Fprintf(stdout, "latency p50 %.1fms  p90 %.1fms  p99 %.1fms  max %.1fms\n",
			ms(pct(latencies, 0.50)), ms(pct(latencies, 0.90)), ms(pct(latencies, 0.99)), ms(latencies[len(latencies)-1]))
		fmt.Fprintf(stdout, "queue wait p50 %.1fms  p90 %.1fms\n",
			pct(waits, 0.50), pct(waits, 0.90))
	}
	if *traceFlag {
		slowest := -1
		for i, o := range outcomes {
			if o.err == nil && o.jobID != "" && (slowest < 0 || o.latency > outcomes[slowest].latency) {
				slowest = i
			}
		}
		if slowest >= 0 {
			printJobTrace(ctx, stdout, client, outcomes[slowest].jobID, outcomes[slowest].latency)
		}
	}
	if *profFlag {
		if err := reportProfile(ctx, stdout, client, *clusterN > 0); err != nil {
			return err
		}
	}
	if *clusterN > 0 && *killOwner && owner != nil {
		var requeues uint64
		for _, n := range nodes {
			if n != owner {
				requeues += n.cluster.Stats().Requeues
			}
		}
		fmt.Fprintf(stdout, "cluster: %d jobs requeued off the killed owner\n", requeues)
	}
	if lost > 0 {
		return fmt.Errorf("%d of %d jobs lost their results", lost, *jobCount)
	}
	return nil
}

// loadNode is one in-process evaserve (optionally a cluster member).
type loadNode struct {
	id       string
	url      string
	dataDir  string
	srv      *serve.Server
	cluster  *cluster.Cluster
	httpSrv  *http.Server
	client   *eva.Client
	stopOnce sync.Once // the kill-owner goroutine races the deferred cleanup
}

func (n *loadNode) stop() {
	n.stopOnce.Do(func() {
		n.httpSrv.Close()
		n.srv.Close()
		if n.cluster != nil {
			n.cluster.Close()
		}
		if n.dataDir != "" {
			os.RemoveAll(n.dataDir)
		}
	})
}

// startNode boots one in-process server. When peers is non-empty the node
// joins the cluster under nodeID with a durable store at dataDir.
func startNode(cfg serve.Config, nodeID string, peers map[string]string, dataDir string) (*loadNode, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	return startNodeOn(ln, cfg, nodeID, peers, dataDir)
}

func startNodeOn(ln net.Listener, cfg serve.Config, nodeID string, peers map[string]string, dataDir string) (*loadNode, error) {
	var st store.Store
	if dataDir != "" {
		fsStore, err := store.OpenFS(dataDir)
		if err != nil {
			return nil, err
		}
		st = fsStore
	}
	cfg.Store = st
	cfg.NodeID = nodeID
	cfg.AllowContextTransfer = len(peers) > 0
	srv := serve.NewServer(cfg)
	node := &loadNode{
		id:      nodeID,
		url:     "http://" + ln.Addr().String(),
		dataDir: dataDir,
		srv:     srv,
	}
	handler := srv.Handler()
	if len(peers) > 0 {
		cl, err := cluster.New(srv, cluster.Config{Self: nodeID, Peers: peers, Store: st})
		if err != nil {
			return nil, err
		}
		node.cluster = cl
		handler = cl.Handler()
	}
	node.httpSrv = &http.Server{Handler: handler}
	go node.httpSrv.Serve(ln)
	node.client = eva.NewClient(node.url)
	return node, nil
}

// startCluster boots n in-process nodes with static membership, each
// durable in its own temp directory.
func startCluster(stdout io.Writer, n int, cfg serve.Config) ([]*loadNode, error) {
	listeners := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		listeners[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	nodes := make([]*loadNode, n)
	for i := range nodes {
		id := fmt.Sprintf("n%d", i+1)
		peers := map[string]string{}
		for j := range urls {
			if j != i {
				peers[fmt.Sprintf("n%d", j+1)] = urls[j]
			}
		}
		dir, err := os.MkdirTemp("", "evaload-"+id+"-*")
		if err != nil {
			return nil, err
		}
		node, err := startNodeOn(listeners[i], cfg, id, peers, dir)
		if err != nil {
			return nil, err
		}
		nodes[i] = node
		fmt.Fprintf(stdout, "cluster node %s on %s (data %s)\n", id, node.url, dir)
	}
	return nodes, nil
}

// runJob drives one job end to end; shed (429) and routing-unavailable
// (502/503) submissions are retried by the client's backoff helper.
func runJob(ctx context.Context, client *eva.Client, programID, contextID string, batches, seed int) outcome {
	req := eva.JobRequest{ProgramID: programID, ContextID: contextID}
	for b := 0; b < batches; b++ {
		v := float64(seed%7 + b + 1)
		req.Batches = append(req.Batches, eva.ExecuteBatch{
			Values: map[string][]float64{
				"x": {v, v + 1, v + 2, v + 3, v + 4, v + 5, v + 6, v + 7},
				"y": {1, 2, 3, 4, 5, 6, 7, 8},
			},
		})
	}
	start := time.Now()
	var status eva.JobStatusInfo
	retries := 0
	err := client.DoWithRetry(ctx,
		eva.RetryPolicy{MaxAttempts: -1, BaseDelay: 100 * time.Millisecond, MaxDelay: 2 * time.Second},
		func(ctx context.Context) error {
			res, err := client.Submit(ctx, req.ProgramID, req.ContextID, req.Batches, eva.SubmitOptions{})
			status = res.Job
			return err
		},
		func(attempt int, err error) { retries++ })
	if err != nil {
		return outcome{retries: retries, err: fmt.Errorf("submit: %w", err)}
	}
	// Wait and fetch; a 409 on fetch means the job was requeued after its
	// node died between "done" and the fetch — wait again.
	for {
		final, err := client.WaitJob(ctx, status.JobID)
		if err != nil {
			return outcome{retries: retries, err: fmt.Errorf("wait: %w", err)}
		}
		if final.Status != "done" {
			return outcome{retries: retries, err: fmt.Errorf("terminal status %q: %s", final.Status, final.Error)}
		}
		res, err := client.FetchJobResult(ctx, status.JobID)
		if err != nil {
			if apiErr, ok := err.(*eva.APIError); ok && apiErr.Status == http.StatusConflict {
				continue
			}
			return outcome{retries: retries, err: fmt.Errorf("fetch: %w", err)}
		}
		if len(res.Results) != batches {
			return outcome{retries: retries, err: fmt.Errorf("%d results; want %d", len(res.Results), batches)}
		}
		for i, br := range res.Results {
			if br.Error != "" {
				return outcome{retries: retries, err: fmt.Errorf("batch %d: %s", i, br.Error)}
			}
			out := br.Values["out"]
			if len(out) == 0 || math.IsNaN(out[0]) {
				return outcome{retries: retries, err: fmt.Errorf("batch %d: missing output", i)}
			}
		}
		return outcome{jobID: status.JobID, latency: time.Since(start), wait: final.WaitMillis, retries: retries}
	}
}

// outcome is the result of driving one job end to end.
type outcome struct {
	jobID   string
	latency time.Duration
	wait    float64
	retries int
	err     error
}

// reportProfile fetches the server's instruction-profiler aggregate after
// the run, prints the hottest per-(opcode, level) buckets and any drift, and
// fits a calibration from the recorded samples — failing the run when the
// profiler recorded nothing (the nightly smoke's assertion that the flight
// recorder actually flew).
func reportProfile(ctx context.Context, stdout io.Writer, client *eva.Client, clusterMode bool) error {
	var rep eva.ProfileReport
	if clusterMode {
		cp, err := client.FetchClusterProfile(ctx)
		if err != nil {
			return fmt.Errorf("profile: %w", err)
		}
		rep = cp.Merged
	} else {
		var err error
		if rep, err = client.FetchProfile(ctx); err != nil {
			return fmt.Errorf("profile: %w", err)
		}
	}
	fmt.Fprintf(stdout, "profile: %d executions, %d instructions, %d sampled, %d drift events\n",
		rep.Executions, rep.Instructions, rep.Samples, rep.DriftTotal)
	buckets := append([]profile.Bucket(nil), rep.Buckets...)
	sort.Slice(buckets, func(a, b int) bool { return buckets[a].TotalNS > buckets[b].TotalNS })
	for i, b := range buckets {
		if i == 8 {
			fmt.Fprintf(stdout, "  ... %d more buckets\n", len(buckets)-i)
			break
		}
		fmt.Fprintf(stdout, "  %-14s L%-2d n=%-6d mean %8.1fus  max %8.1fus\n",
			b.Op, b.Level, b.Count, b.MeanUS, b.MaxNS/1e3)
	}
	for kind, n := range rep.DriftCounts {
		fmt.Fprintf(stdout, "  drift %s: %d\n", kind, n)
	}
	if rep.Samples == 0 {
		return fmt.Errorf("profile: server recorded no samples (is -profile-sample >= 0?)")
	}
	cal, err := profile.Fit([]profile.ProgramProfile{{
		ProgramID:    "evaload",
		Executions:   rep.Executions,
		Instructions: rep.Instructions,
		Samples:      rep.Samples,
		Buckets:      rep.Buckets,
	}})
	if err != nil {
		return fmt.Errorf("profile: calibration fit: %w", err)
	}
	if len(cal.NsPerUnit) == 0 || cal.BaselineNsPerUnit <= 0 {
		return fmt.Errorf("profile: calibration fit is empty: %+v", cal)
	}
	ops := make([]string, 0, len(cal.NsPerUnit))
	for op := range cal.NsPerUnit {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	fmt.Fprintf(stdout, "calibration fit (baseline %.4g ns/unit, %d samples):\n", cal.BaselineNsPerUnit, cal.Samples)
	for _, op := range ops {
		fmt.Fprintf(stdout, "  %-14s %.4g ns/unit\n", op, cal.NsPerUnit[op])
	}
	return nil
}

// printJobTrace fetches a job's server-side trace and prints its span tree —
// the phase breakdown (queue wait vs coalesce wait vs execution vs store
// write) of where the job's latency went.
func printJobTrace(ctx context.Context, stdout io.Writer, client *eva.Client, jobID string, latency time.Duration) {
	tr, err := client.FetchJobTrace(ctx, jobID)
	if err != nil {
		fmt.Fprintf(stdout, "trace: slowest job %s: %v\n", jobID, err)
		return
	}
	fmt.Fprintf(stdout, "slowest job %s: %.1fms client-observed (trace %s, node %s, %.1fms server-side):\n",
		jobID, ms(latency), tr.TraceID, tr.Node, tr.DurationMS)
	var walk func(sp obs.SpanJSON, depth int)
	walk = func(sp obs.SpanJSON, depth int) {
		line := fmt.Sprintf("  %s%s", strings.Repeat("  ", depth), sp.Name)
		fmt.Fprintf(stdout, "%-36s %9.2fms", line, sp.DurationMS)
		if len(sp.Attrs) > 0 {
			keys := make([]string, 0, len(sp.Attrs))
			for k := range sp.Attrs {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				fmt.Fprintf(stdout, "  %s=%s", k, sp.Attrs[k])
			}
		}
		fmt.Fprintln(stdout)
		for _, ch := range sp.Children {
			walk(ch, depth+1)
		}
	}
	for _, sp := range tr.Spans {
		walk(sp, 0)
	}
}

// runCoalesceBench drives coalesceSource through the plain jobs API (the
// unbatched baseline) and then through POST /jobs?coalesce=1, verifying
// every caller's decrypted output against the cleartext reference, and
// reports amortized per-request latency percentiles, throughput, and the
// coalesced-over-unbatched speedup.
func runCoalesceBench(ctx context.Context, stdout io.Writer, client *eva.Client, jobCount, concurrency int) error {
	comp, err := client.Compile(ctx, eva.CompileRequest{
		Source:  coalesceSource,
		Options: &serve.CompileOptionsJSON{AllowInsecure: true},
	})
	if err != nil {
		return fmt.Errorf("compile: %w", err)
	}
	ectx, err := client.NewKeygenContext(ctx, comp.ID, 42)
	if err != nil {
		return fmt.Errorf("context (the server must run -demo): %w", err)
	}
	fmt.Fprintf(stdout, "coalesce bench: program %s, context %s, %d requests, concurrency %d\n",
		comp.ID, ectx.ContextID, jobCount, concurrency)

	// inputs gives caller i its own width-8 vectors; check verifies a
	// caller's decrypted slice against the cleartext (x²+y)·0.5 within the
	// CKKS approximation tolerance — co-batched callers must come back with
	// exactly their own data.
	inputs := func(i int) (x, y []float64) {
		x, y = make([]float64, 8), make([]float64, 8)
		for k := range x {
			x[k] = float64(i%7+1) + float64(k)*0.25
			y[k] = float64(k + 1)
		}
		return
	}
	check := func(i int, out []float64) error {
		x, y := inputs(i)
		if len(out) < len(x) {
			return fmt.Errorf("request %d: %d output slots; want >= %d", i, len(out), len(x))
		}
		for k := range x {
			want := (x[k]*x[k] + y[k]) * 0.5
			if math.Abs(out[k]-want) > 1e-2 {
				return fmt.Errorf("request %d slot %d: got %v, want %v", i, k, out[k], want)
			}
		}
		return nil
	}
	request := func(i int) eva.JobRequest {
		x, y := inputs(i)
		return eva.JobRequest{
			ProgramID: comp.ID,
			ContextID: ectx.ContextID,
			Batches:   []eva.ExecuteBatch{{Values: map[string][]float64{"x": x, "y": y}}},
		}
	}
	retry := eva.RetryPolicy{MaxAttempts: -1, BaseDelay: 50 * time.Millisecond, MaxDelay: time.Second}

	// Phase 1: unbatched baseline — one full job per request.
	baseLat, baseElapsed, err := drivePhase(ctx, jobCount, concurrency, func(ctx context.Context, i int) error {
		req := request(i)
		var status eva.JobStatusInfo
		err := client.DoWithRetry(ctx, retry, func(ctx context.Context) error {
			res, err := client.Submit(ctx, req.ProgramID, req.ContextID, req.Batches, eva.SubmitOptions{})
			status = res.Job
			return err
		}, nil)
		if err != nil {
			return fmt.Errorf("submit: %w", err)
		}
		final, err := client.WaitJob(ctx, status.JobID)
		if err != nil {
			return fmt.Errorf("wait: %w", err)
		}
		if final.Status != "done" {
			return fmt.Errorf("terminal status %q: %s", final.Status, final.Error)
		}
		res, err := client.FetchJobResult(ctx, status.JobID)
		if err != nil {
			return fmt.Errorf("fetch: %w", err)
		}
		if len(res.Results) != 1 {
			return fmt.Errorf("%d results; want 1", len(res.Results))
		}
		if res.Results[0].Error != "" {
			return fmt.Errorf("batch: %s", res.Results[0].Error)
		}
		return check(i, res.Results[0].Values["out"])
	})
	if err != nil {
		return fmt.Errorf("unbatched phase: %w", err)
	}
	baseTput := float64(jobCount) / baseElapsed.Seconds()
	fmt.Fprintf(stdout, "unbatched: %d requests in %.2fs (%.1f req/s)  p50 %.1fms  p90 %.1fms  p99 %.1fms\n",
		jobCount, baseElapsed.Seconds(), baseTput,
		ms(pct(baseLat, 0.50)), ms(pct(baseLat, 0.90)), ms(pct(baseLat, 0.99)))

	// Phase 2: coalesced — concurrent callers share batched executions; each
	// call blocks until its batch ran, so its wall time IS the amortized
	// per-request latency.
	coalLat, coalElapsed, err := drivePhase(ctx, jobCount, concurrency, func(ctx context.Context, i int) error {
		req := request(i)
		var resp eva.CoalesceResponse
		err := client.DoWithRetry(ctx, retry, func(ctx context.Context) error {
			res, err := client.Submit(ctx, req.ProgramID, req.ContextID, req.Batches, eva.SubmitOptions{Coalesce: true})
			if err == nil {
				resp = *res.Coalesced
			}
			return err
		}, nil)
		if err != nil {
			return fmt.Errorf("submit: %w", err)
		}
		if resp.Result.Error != "" {
			return fmt.Errorf("batch %s: %s", resp.BatchJobID, resp.Result.Error)
		}
		return check(i, resp.Result.Values["out"])
	})
	if err != nil {
		return fmt.Errorf("coalesced phase: %w", err)
	}
	coalTput := float64(jobCount) / coalElapsed.Seconds()
	fmt.Fprintf(stdout, "coalesced: %d requests in %.2fs (%.1f req/s)  amortized p50 %.1fms  p90 %.1fms  p99 %.1fms\n",
		jobCount, coalElapsed.Seconds(), coalTput,
		ms(pct(coalLat, 0.50)), ms(pct(coalLat, 0.90)), ms(pct(coalLat, 0.99)))
	fmt.Fprintf(stdout, "speedup: %.1fx throughput over unbatched\n", coalTput/baseTput)

	if resp, err := client.DoRaw(ctx, http.MethodGet, "/metrics", nil, nil); err == nil {
		defer resp.Body.Close()
		var rep serve.MetricsReport
		if json.NewDecoder(resp.Body).Decode(&rep) == nil && rep.Coalesce != nil {
			cs := rep.Coalesce
			fmt.Fprintf(stdout, "server coalesce metrics: %d batches for %d requests (mean size %.1f), slot occupancy %.2f, amortized %.1fms/request\n",
				cs.Batches, cs.Requests, cs.MeanBatchSize, cs.Occupancy, cs.AmortizedRequestMS)
		}
	}
	return nil
}

// Stage programs of the -pipeline smoke. Both compile with the same options
// (MaxRescaleLog 30 keeps each product's rescale at the 2^30 waterline;
// ExtraLevels 1 adds the headroom the chaining consumes), so they share one
// parameter chain, and with the same keygen seed their demo contexts share
// keys — the conditions under which stage outputs are consumable downstream.
const (
	pipelineStage1 = `program pstage1 vec=8;
input x @30;
input y @30;
out = x * y;
output out @30;`
	pipelineStage2 = `program pstage2 vec=8;
input z @30;
out2 = z * 0.5@30;
output out2 @30;`
)

// runPipelineSmoke drives POST /pipelines end to end: a two-stage encrypted
// chain (stage 2 consumes stage 1's output server-side, zero client-side
// ciphertext round-trips) whose decrypted result must match the cleartext
// reference, then an over-deep chain that must be rejected at submit with a
// structured 422 — the chaining checker working is part of the contract.
func runPipelineSmoke(ctx context.Context, stdout io.Writer, client *eva.Client) error {
	opts := &serve.CompileOptionsJSON{AllowInsecure: true, MaxRescaleLog: 30, ExtraLevels: 1}
	compile := func(src string) (string, error) {
		comp, err := client.Compile(ctx, eva.CompileRequest{Source: src, Options: opts})
		if err != nil {
			return "", fmt.Errorf("compile: %w", err)
		}
		return comp.ID, nil
	}
	p1, err := compile(pipelineStage1)
	if err != nil {
		return err
	}
	p2, err := compile(pipelineStage2)
	if err != nil {
		return err
	}
	mkctx := func(programID string) (string, error) {
		ec, err := client.NewKeygenContext(ctx, programID, 7)
		if err != nil {
			return "", fmt.Errorf("context (the server must run -demo): %w", err)
		}
		return ec.ContextID, nil
	}
	c1, err := mkctx(p1)
	if err != nil {
		return err
	}
	c2, err := mkctx(p2)
	if err != nil {
		return err
	}

	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	ys := []float64{8, 7, 6, 5, 4, 3, 2, 1}
	stageRef := func(stage int, output string) eva.PipelineInput {
		return eva.PipelineInput{Stage: &stage, Output: output}
	}

	start := time.Now()
	st, err := client.SubmitPipeline(ctx, eva.PipelineRequest{
		Stages: []eva.PipelineStage{
			{ProgramID: p1, ContextID: c1, Inputs: map[string]eva.PipelineInput{
				"x": {Values: xs}, "y": {Values: ys},
			}},
			{ProgramID: p2, ContextID: c2, Inputs: map[string]eva.PipelineInput{
				"z": stageRef(0, "out"),
			}, Output: "values"},
		},
	})
	if err != nil {
		return fmt.Errorf("pipeline submit: %w", err)
	}
	res, err := client.WaitPipeline(ctx, st.JobID)
	if err != nil {
		return fmt.Errorf("pipeline wait: %w", err)
	}
	if len(res.Results) != 2 {
		return fmt.Errorf("pipeline returned %d stage results; want 2", len(res.Results))
	}
	out := res.Results[1].Values["out2"]
	if len(out) != len(xs) {
		return fmt.Errorf("final stage returned %d values; want %d", len(out), len(xs))
	}
	for i := range xs {
		want := xs[i] * ys[i] * 0.5
		if math.Abs(out[i]-want) > 1e-2 {
			return fmt.Errorf("pipeline output[%d] = %v; cleartext reference %v", i, out[i], want)
		}
	}
	fmt.Fprintf(stdout, "pipeline: 2-stage chain (job %s) verified against the cleartext reference in %.1fms\n",
		st.JobID, ms(time.Since(start)))

	// Negative path: chain until the level budget runs dry; the checker must
	// reject the submission — a mid-run failure here would mean the static
	// check let an impossible chain through.
	deep := eva.PipelineRequest{Stages: []eva.PipelineStage{
		{ProgramID: p1, ContextID: c1, Inputs: map[string]eva.PipelineInput{
			"x": {Values: xs}, "y": {Values: ys},
		}},
	}}
	for i := 1; i <= 3; i++ {
		deep.Stages = append(deep.Stages, eva.PipelineStage{
			ProgramID: p2, ContextID: c2,
			Inputs: map[string]eva.PipelineInput{"z": stageRef(i-1, outputName(i))},
		})
	}
	if _, err := client.SubmitPipeline(ctx, deep); err == nil {
		return fmt.Errorf("over-deep chain was accepted; the chaining checker must reject it at submit")
	} else if apiErr, ok := err.(*eva.APIError); !ok || apiErr.Status != http.StatusUnprocessableEntity {
		return fmt.Errorf("over-deep chain: got %v; want a structured 422", err)
	}
	fmt.Fprintln(stdout, "pipeline: incompatible chain rejected at submit with 422")
	return nil
}

// outputName names stage i's encrypted output in the -pipeline smoke.
func outputName(stage int) string {
	if stage == 1 {
		return "out" // stage 0 is pstage1
	}
	return "out2"
}

// drivePhase runs jobCount requests through one at the given concurrency and
// returns the sorted per-request latencies plus the phase's wall time. Any
// request failure fails the whole phase — this is a correctness smoke as
// much as a benchmark.
func drivePhase(ctx context.Context, jobCount, concurrency int, one func(ctx context.Context, i int) error) ([]time.Duration, time.Duration, error) {
	latencies := make([]time.Duration, jobCount)
	errs := make([]error, jobCount)
	sem := make(chan struct{}, max(1, concurrency))
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < jobCount; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			reqStart := time.Now()
			errs[i] = one(ctx, i)
			latencies[i] = time.Since(reqStart)
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for i, err := range errs {
		if err != nil {
			return nil, elapsed, fmt.Errorf("request %d: %w", i, err)
		}
	}
	sort.Slice(latencies, func(a, b int) bool { return latencies[a] < latencies[b] })
	return latencies, elapsed, nil
}

// pct returns the q-quantile of an ascending-sorted slice (nearest-rank).
func pct[T time.Duration | float64](sorted []T, q float64) T {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
