package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"eva/internal/bench"
	"eva/internal/core"
	"eva/internal/lang"
)

const quickstartEva = `program quickstart vec=8;
input x @30;
input y @30;
result = (x * x + y) * 0.5@30;
output result @30;
`

func TestRunDemo(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-demo", "x2y3", "-insecure", "-print"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"program \"x2y3\"", "rotation steps", "RESCALE", "transformed program:"} {
		if !strings.Contains(got, want) {
			t.Errorf("demo output missing %q:\n%s", want, got)
		}
	}
}

// TestRunSourceEndToEnd compiles a .eva file and emits the compiled program
// both as JSON and as source, checking each output re-loads.
func TestRunSourceEndToEnd(t *testing.T) {
	dir := t.TempDir()
	srcPath := filepath.Join(dir, "quickstart.eva")
	if err := os.WriteFile(srcPath, []byte(quickstartEva), 0o644); err != nil {
		t.Fatal(err)
	}

	jsonOut := filepath.Join(dir, "compiled.json")
	var out strings.Builder
	if err := run([]string{"-src", srcPath, "-insecure", "-out", jsonOut}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "compiled program written to") {
		t.Errorf("missing write confirmation:\n%s", out.String())
	}
	f, err := os.Open(jsonOut)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	compiled, err := core.Deserialize(f)
	if err != nil {
		t.Fatalf("emitted JSON does not deserialize: %v", err)
	}
	if compiled.Name != "quickstart" {
		t.Errorf("compiled program name %q", compiled.Name)
	}

	srcOut := filepath.Join(dir, "compiled.eva")
	out.Reset()
	if err := run([]string{"-src", srcPath, "-insecure", "-emit", "src", "-out", srcOut}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	emitted, err := os.ReadFile(srcOut)
	if err != nil {
		t.Fatal(err)
	}
	reparsed, err := lang.ParseProgram(string(emitted))
	if err != nil {
		t.Fatalf("emitted source does not parse: %v\n%s", err, emitted)
	}
	if err := core.Equal(compiled, reparsed); err != nil {
		t.Errorf("JSON and source emissions differ: %v", err)
	}
	// The compiled form must contain the compiler-inserted instructions.
	if !strings.Contains(string(emitted), "rescale(") {
		t.Errorf("compiled source missing rescale:\n%s", emitted)
	}
}

func TestRunJSONInput(t *testing.T) {
	dir := t.TempDir()
	inPath := filepath.Join(dir, "prog.json")
	f, err := os.Create(inPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := bench.FigureDemoProgram().Serialize(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	var out strings.Builder
	if err := run([]string{"-in", inPath, "-insecure"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "instructions:") {
		t.Errorf("unexpected output:\n%s", out.String())
	}
}

func TestRunFlagValidation(t *testing.T) {
	var out strings.Builder
	if err := run(nil, &out, io.Discard); err == nil {
		t.Error("no input flags accepted")
	}
	if err := run([]string{"-demo", "x2y3", "-in", "x.json"}, &out, io.Discard); err == nil {
		t.Error("conflicting input flags accepted")
	}
	if err := run([]string{"-demo", "x2y3", "-emit", "protobuf"}, &out, io.Discard); err == nil {
		t.Error("unknown -emit format accepted")
	}
}

// TestRunSourceErrorsArePositioned: a malformed .eva file fails with
// line:column diagnostics, not a generic message.
func TestRunSourceErrorsArePositioned(t *testing.T) {
	dir := t.TempDir()
	srcPath := filepath.Join(dir, "bad.eva")
	if err := os.WriteFile(srcPath, []byte("program p vec=8;\ninput x @30;\noutput o = x + zz @30;\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	err := run([]string{"-src", srcPath, "-insecure"}, &out, io.Discard)
	if err == nil {
		t.Fatal("malformed source compiled")
	}
	if !strings.Contains(err.Error(), "3:16") || !strings.Contains(err.Error(), "undefined name") {
		t.Errorf("error lacks position or message: %v", err)
	}
}
