// Command evac is the EVA compiler driver: it reads an EVA program — in the
// JSON program format or as .eva source text — runs the compiler
// (transformation, validation, parameter selection, rotation selection), and
// reports the selected encryption parameters, rotation steps, and
// transformed program. It can emit the compiled program back in either
// format.
//
// Usage:
//
//	evac -in program.json [-out compiled.json] [-emit json|src] [-insecure] [-print]
//	evac -src program.eva [-out compiled.eva] [-emit src]
//	evac -demo x2y3 [-waterline 30] [-print]
//
// The -demo mode compiles the paper's running example (Figure 2) so the
// effect of the transformation passes can be inspected without writing a
// program first.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"eva/internal/analysis"
	"eva/internal/bench"
	"eva/internal/compile"
	"eva/internal/core"
	"eva/internal/lang"
	"eva/internal/rewrite"
)

// errFlagParse marks a command-line parse failure the FlagSet already
// reported (with usage) to stderr, so main must not print it again.
var errFlagParse = errors.New("invalid command line")

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if !errors.Is(err, errFlagParse) {
			fmt.Fprintln(os.Stderr, "evac:", err)
		}
		os.Exit(1)
	}
}

// run is the whole driver; main only maps its error to the exit status, so
// tests can drive the real command line in-process. Reports go to stdout,
// flag-parse diagnostics and usage to stderr.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("evac", flag.ContinueOnError)
	var (
		inPath    = fs.String("in", "", "input program in the JSON program format")
		srcPath   = fs.String("src", "", "input program as .eva source text")
		outPath   = fs.String("out", "", "write the compiled program to this path")
		emit      = fs.String("emit", "json", "output format for -out: json (wire format) or src (.eva source)")
		demo      = fs.String("demo", "", "compile a built-in demo program instead of -in (x2y3)")
		insecure  = fs.Bool("insecure", false, "allow parameter sets below the 128-bit security level")
		printProg = fs.Bool("print", false, "print the transformed program instruction by instruction")
		waterline = fs.Float64("waterline", 0, "override the waterline scale (log2); 0 = maximum input scale")
		rescale   = fs.String("rescale", "waterline", "rescale insertion strategy: waterline, always, fixed, none")
		modswitch = fs.String("modswitch", "eager", "modulus-switch insertion strategy: eager, lazy, none")
	)
	fs.SetOutput(stderr)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return errFlagParse
	}

	prog, err := loadProgram(*inPath, *srcPath, *demo)
	if err != nil {
		return err
	}
	if *emit != "json" && *emit != "src" {
		return fmt.Errorf("unknown -emit format %q (want json or src)", *emit)
	}

	opts := compile.DefaultOptions()
	opts.AllowInsecure = *insecure
	opts.WaterlineLog = *waterline
	if opts.Rescale, err = rewrite.ParseRescaleStrategy(*rescale); err != nil {
		return err
	}
	if opts.ModSwitch, err = rewrite.ParseModSwitchStrategy(*modswitch); err != nil {
		return err
	}

	res, err := compile.Compile(prog, opts)
	if err != nil {
		return err
	}

	fmt.Fprintln(stdout, res.Summary())
	fmt.Fprintf(stdout, "prime bit sizes (consumption order, special first): [%d %v]\n", res.Plan.SpecialBits, res.Plan.BitSizes)
	fmt.Fprintf(stdout, "rotation steps requiring Galois keys: %v\n", res.RotationSteps)
	fmt.Fprintf(stdout, "critical output: %q, chain length %d\n", res.Plan.CriticalOutput, res.Plan.MaxChainLength)
	fmt.Fprintf(stdout, "instructions: input %d -> compiled %d (mult depth %d)\n",
		res.SourceStats.Terms, res.CompiledStats.Terms, res.CompiledStats.MultDepth)
	for op, count := range res.CompiledStats.Instructions {
		fmt.Fprintf(stdout, "  %-12s %d\n", op, count)
	}
	model := analysis.CostModel{LogN: res.LogN, TotalLevels: len(res.Plan.BitSizes)}
	est := model.EstimateCost(res.Program)
	fmt.Fprintf(stdout, "estimated cost: %.3g limb-element ops, critical path %.3g (ideal parallel speedup <= %.1fx)\n",
		est.Total, est.CriticalPath, est.ParallelSpeedupBound())
	if *printProg {
		fmt.Fprintln(stdout, "transformed program:")
		bench.DescribeProgram(stdout, res.Program)
	}
	if *outPath != "" {
		if err := writeProgram(res.Program, *outPath, *emit); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "compiled program written to %s (%s)\n", *outPath, *emit)
	}
	return nil
}

func loadProgram(inPath, srcPath, demo string) (*core.Program, error) {
	set := 0
	for _, s := range []string{inPath, srcPath, demo} {
		if s != "" {
			set++
		}
	}
	if set != 1 {
		return nil, fmt.Errorf("exactly one of -in, -src, or -demo is required")
	}
	switch {
	case demo != "":
		if demo != "x2y3" {
			return nil, fmt.Errorf("unknown demo %q (available: x2y3)", demo)
		}
		return bench.FigureDemoProgram(), nil
	case srcPath != "":
		src, err := os.ReadFile(srcPath)
		if err != nil {
			return nil, err
		}
		prog, err := lang.ParseProgram(string(src))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", srcPath, err)
		}
		return prog, nil
	default:
		f, err := os.Open(inPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return core.Deserialize(f)
	}
}

func writeProgram(p *core.Program, path, emit string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if emit == "src" {
		src, err := lang.Print(p)
		if err != nil {
			return err
		}
		_, err = io.WriteString(f, src)
		return err
	}
	return p.Serialize(f)
}
