// Command evac is the EVA compiler driver: it reads an EVA program in the
// JSON program format, runs the compiler (transformation, validation,
// parameter selection, rotation selection), and reports the selected
// encryption parameters, rotation steps, and transformed program. It can also
// emit the compiled program back in the serialized format.
//
// Usage:
//
//	evac -in program.json [-out compiled.json] [-insecure] [-print]
//	evac -demo x2y3 [-waterline 30] [-print]
//
// The -demo mode compiles the paper's running example (Figure 2) so the
// effect of the transformation passes can be inspected without writing a
// program first.
package main

import (
	"flag"
	"fmt"
	"os"

	"eva/internal/analysis"
	"eva/internal/bench"
	"eva/internal/compile"
	"eva/internal/core"
	"eva/internal/rewrite"
)

func main() {
	var (
		inPath    = flag.String("in", "", "input program in the JSON program format")
		outPath   = flag.String("out", "", "write the compiled program to this path")
		demo      = flag.String("demo", "", "compile a built-in demo program instead of -in (x2y3)")
		insecure  = flag.Bool("insecure", false, "allow parameter sets below the 128-bit security level")
		printProg = flag.Bool("print", false, "print the transformed program instruction by instruction")
		waterline = flag.Float64("waterline", 0, "override the waterline scale (log2); 0 = maximum input scale")
		rescale   = flag.String("rescale", "waterline", "rescale insertion strategy: waterline, always, fixed, none")
		modswitch = flag.String("modswitch", "eager", "modulus-switch insertion strategy: eager, lazy, none")
	)
	flag.Parse()

	prog, err := loadProgram(*inPath, *demo)
	if err != nil {
		fail(err)
	}

	opts := compile.DefaultOptions()
	opts.AllowInsecure = *insecure
	opts.WaterlineLog = *waterline
	if opts.Rescale, err = rewrite.ParseRescaleStrategy(*rescale); err != nil {
		fail(err)
	}
	if opts.ModSwitch, err = rewrite.ParseModSwitchStrategy(*modswitch); err != nil {
		fail(err)
	}

	res, err := compile.Compile(prog, opts)
	if err != nil {
		fail(err)
	}

	fmt.Println(res.Summary())
	fmt.Printf("prime bit sizes (consumption order, special first): [%d %v]\n", res.Plan.SpecialBits, res.Plan.BitSizes)
	fmt.Printf("rotation steps requiring Galois keys: %v\n", res.RotationSteps)
	fmt.Printf("critical output: %q, chain length %d\n", res.Plan.CriticalOutput, res.Plan.MaxChainLength)
	fmt.Printf("instructions: input %d -> compiled %d (mult depth %d)\n",
		res.SourceStats.Terms, res.CompiledStats.Terms, res.CompiledStats.MultDepth)
	for op, count := range res.CompiledStats.Instructions {
		fmt.Printf("  %-12s %d\n", op, count)
	}
	model := analysis.CostModel{LogN: res.LogN, TotalLevels: len(res.Plan.BitSizes)}
	est := model.EstimateCost(res.Program)
	fmt.Printf("estimated cost: %.3g limb-element ops, critical path %.3g (ideal parallel speedup <= %.1fx)\n",
		est.Total, est.CriticalPath, est.ParallelSpeedupBound())
	if *printProg {
		fmt.Println("transformed program:")
		bench.DescribeProgram(os.Stdout, res.Program)
	}
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		if err := res.Program.Serialize(f); err != nil {
			fail(err)
		}
		fmt.Printf("compiled program written to %s\n", *outPath)
	}
}

func loadProgram(inPath, demo string) (*core.Program, error) {
	switch {
	case demo != "":
		if demo != "x2y3" {
			return nil, fmt.Errorf("unknown demo %q (available: x2y3)", demo)
		}
		return bench.FigureDemoProgram(), nil
	case inPath != "":
		f, err := os.Open(inPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return core.Deserialize(f)
	default:
		return nil, fmt.Errorf("either -in or -demo is required")
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "evac:", err)
	os.Exit(1)
}
