// Command benchjson converts `go test -bench` text output into a stable JSON
// document, so the performance trajectory of the backend can be tracked
// machine-readably across PRs (BENCH_backend.json at the repository root is
// generated with it), and compares two such documents as a CI
// bench-regression gate.
//
// Usage:
//
//	go test -run=NONE -bench=. -benchtime=1x ./internal/ring | benchjson -o BENCH_backend.json
//	benchjson -compare -threshold 0.25 old.json new.json
//
// Each benchmark line becomes one entry carrying the benchmark name (with
// the -GOMAXPROCS suffix stripped), the package it came from, the iteration
// count, and every reported metric (ns/op, B/op, allocs/op, and any custom
// b.ReportMetric unit) keyed by unit.
//
// In -compare mode, every benchmark whose name matches -track (default: the
// hot backend ops NTT, Rotate, RotateHoisted, Relinearize, Rescale, the
// serving tier's CoalescedExecute and HandleResolve, and the end-to-end
// HetensorMatmul workload) is compared between the two documents
// on the -metric
// value (default ns/op); if any tracked
// benchmark got slower by more than -threshold (a fraction: 0.25 = 25%),
// benchjson prints the offenders and exits non-zero, failing the build.
// Reports carrying repeated runs (-count=N) collapse to the per-name
// minimum, and -ref names a reference benchmark whose old/new ratio
// normalizes away uniform machine-speed differences (CI runners are not the
// machine the baseline was recorded on).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name       string             `json:"name"`
	Pkg        string             `json:"pkg,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the emitted JSON document.
type Report struct {
	Schema     string   `json:"schema"`
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		if err == flag.ErrHelp {
			return // -h is a successful invocation
		}
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	fs.SetOutput(stderr)
	outPath := fs.String("o", "", "write JSON to this file instead of stdout")
	compare := fs.Bool("compare", false, "compare two JSON reports (old.json new.json) instead of parsing bench output")
	threshold := fs.Float64("threshold", 0.25, "compare mode: allowed fractional slowdown per tracked benchmark")
	track := fs.String("track", "NTT|Rotate|RotateHoisted|Relinearize|Rescale|CoalescedExecute|HandleResolve|HetensorMatmul|ProfiledExecute", "compare mode: regexp of benchmark names to gate on")
	ref := fs.String("ref", "", "compare mode: regexp of a reference benchmark used to normalize machine speed (empty = raw times)")
	metric := fs.String("metric", "ns/op", "compare mode: metric to compare")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *compare {
		if fs.NArg() != 2 {
			return fmt.Errorf("compare mode needs exactly two files: benchjson -compare old.json new.json")
		}
		return runCompare(fs.Arg(0), fs.Arg(1), *threshold, *track, *ref, *metric, stdout)
	}
	report, err := Parse(stdin)
	if err != nil {
		return err
	}
	if len(report.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines found in input")
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if *outPath != "" {
		return os.WriteFile(*outPath, data, 0o644)
	}
	_, err = stdout.Write(data)
	return err
}

// gomaxprocsSuffix matches the "-8" style suffix the testing package appends
// to benchmark names.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// Parse reads `go test -bench` output and collects every benchmark line.
func Parse(r io.Reader) (*Report, error) {
	report := &Report{Schema: "eva-bench/v1"}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			report.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			report.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			report.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			res, ok := parseBenchLine(line)
			if !ok {
				continue
			}
			res.Pkg = pkg
			report.Benchmarks = append(report.Benchmarks, res)
		}
	}
	return report, sc.Err()
}

// parseBenchLine parses one line of the form
//
//	BenchmarkName/sub-8   100   12345 ns/op   67 B/op   8 allocs/op   1.5 custom-unit
//
// returning ok=false for lines that do not carry an iteration count and at
// least one (value, unit) pair.
func parseBenchLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	res := Result{
		Name:       gomaxprocsSuffix.ReplaceAllString(fields[0], ""),
		Iterations: iters,
		Metrics:    map[string]float64{},
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		res.Metrics[fields[i+1]] = v
	}
	return res, true
}
