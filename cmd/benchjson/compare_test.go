package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

func report(vals map[string]float64) *Report {
	r := &Report{Schema: "eva-bench/v1"}
	for name, v := range vals {
		r.Benchmarks = append(r.Benchmarks, Result{
			Name: name, Pkg: "eva/internal/ring", Iterations: 1,
			Metrics: map[string]float64{"ns/op": v},
		})
	}
	return r
}

var trackDefault = regexp.MustCompile("NTT|Rotate|Relinearize|Rescale")

func TestCompareThresholdLogic(t *testing.T) {
	old := report(map[string]float64{
		"BenchmarkNTT/N=4096":   100,
		"BenchmarkRotate":       1000,
		"BenchmarkRelinearize":  2000,
		"BenchmarkRescale":      500,
		"BenchmarkMulUntracked": 10,
	})
	new := report(map[string]float64{
		"BenchmarkNTT/N=4096":   124,  // +24%: inside a 25% threshold
		"BenchmarkRotate":       1300, // +30%: regression
		"BenchmarkRelinearize":  1500, // faster: fine
		"BenchmarkRescale":      500,  // unchanged
		"BenchmarkMulUntracked": 1e9,  // untracked: ignored
	})
	rows := Compare(old, new, 0.25, trackDefault, "ns/op", 1)
	if len(rows) != 4 {
		t.Fatalf("%d rows; want 4 tracked", len(rows))
	}
	bad := Regressions(rows)
	if len(bad) != 1 || !strings.Contains(bad[0].Name, "Rotate") {
		t.Fatalf("regressions = %+v; want exactly BenchmarkRotate", bad)
	}
	if rows[0].Name != bad[0].Name {
		t.Errorf("rows not sorted worst-first: %+v", rows[0])
	}
	if d := bad[0].Delta; d < 0.29 || d > 0.31 {
		t.Errorf("Rotate delta = %v; want ~0.30", d)
	}
}

// TestCompareMinOfRepeatedRuns: with -count=N each benchmark appears N
// times; both sides must collapse to the per-name minimum.
func TestCompareMinOfRepeatedRuns(t *testing.T) {
	rep := func(vals ...float64) *Report {
		r := &Report{}
		for _, v := range vals {
			r.Benchmarks = append(r.Benchmarks, Result{
				Name: "BenchmarkNTT", Pkg: "ring", Metrics: map[string]float64{"ns/op": v},
			})
		}
		return r
	}
	// Old min 100; new runs 180/110/105 → min 105: within threshold.
	rows := Compare(rep(120, 100, 140), rep(180, 110, 105), 0.25, trackDefault, "ns/op", 1)
	if len(rows) != 1 {
		t.Fatalf("%d rows; want 1 (duplicates collapsed)", len(rows))
	}
	if rows[0].Old != 100 || rows[0].New != 105 {
		t.Fatalf("min aggregation: old=%v new=%v; want 100/105", rows[0].Old, rows[0].New)
	}
	if rows[0].Regressed {
		t.Error("min-of-runs within threshold flagged as regression")
	}
}

func TestCompareExactThresholdPasses(t *testing.T) {
	old := report(map[string]float64{"BenchmarkNTT": 100})
	new := report(map[string]float64{"BenchmarkNTT": 125}) // exactly +25%
	rows := Compare(old, new, 0.25, trackDefault, "ns/op", 1)
	if len(Regressions(rows)) != 0 {
		t.Error("exact threshold should not regress (strict >)")
	}
}

func TestCompareMissingBenchmark(t *testing.T) {
	old := report(map[string]float64{"BenchmarkNTT": 100, "BenchmarkRotate": 50})
	new := report(map[string]float64{"BenchmarkNTT": 100})
	rows := Compare(old, new, 0.25, trackDefault, "ns/op", 1)
	var missing int
	for _, r := range rows {
		if r.MissingInNew {
			missing++
			if r.Regressed {
				t.Error("missing benchmark marked as regression")
			}
		}
	}
	if missing != 1 {
		t.Errorf("%d missing rows; want 1", missing)
	}
	if !rows[len(rows)-1].MissingInNew {
		t.Error("missing row should sort last")
	}
}

func TestComparePkgDisambiguation(t *testing.T) {
	// The same benchmark name in two packages must not cross-match.
	old := &Report{Benchmarks: []Result{
		{Name: "BenchmarkNTT", Pkg: "a", Metrics: map[string]float64{"ns/op": 100}},
		{Name: "BenchmarkNTT", Pkg: "b", Metrics: map[string]float64{"ns/op": 10}},
	}}
	new := &Report{Benchmarks: []Result{
		{Name: "BenchmarkNTT", Pkg: "a", Metrics: map[string]float64{"ns/op": 100}},
		{Name: "BenchmarkNTT", Pkg: "b", Metrics: map[string]float64{"ns/op": 100}}, // 10x in pkg b
	}}
	bad := Regressions(Compare(old, new, 0.25, trackDefault, "ns/op", 1))
	if len(bad) != 1 || bad[0].Name != "b.BenchmarkNTT" {
		t.Fatalf("regressions = %+v; want only b.BenchmarkNTT", bad)
	}
}

// TestRefScaleNormalizesMachineDrift: a uniformly slower machine slows the
// reference by the same factor as the tracked ops, so with -ref the gate
// passes; a real regression moves a tracked op against the reference and
// still fails.
func TestRefScaleNormalizesMachineDrift(t *testing.T) {
	old := report(map[string]float64{
		"BenchmarkNTTReference": 1000,
		"BenchmarkNTTForward":   100,
		"BenchmarkRotate":       400,
	})
	// Everything 1.4x slower: pure environment drift.
	drift := report(map[string]float64{
		"BenchmarkNTTReference": 1400,
		"BenchmarkNTTForward":   140,
		"BenchmarkRotate":       560,
	})
	scale, err := refScale(old, drift, "NTTReference", "ns/op")
	if err != nil {
		t.Fatal(err)
	}
	if scale < 0.713 || scale > 0.715 {
		t.Fatalf("scale = %v; want ~1000/1400", scale)
	}
	if bad := Regressions(Compare(old, drift, 0.25, trackDefault, "ns/op", scale)); len(bad) != 0 {
		t.Fatalf("uniform drift flagged as regression: %+v", bad)
	}

	// Same drifted machine, but NTTForward genuinely 2x slower on top.
	realBad := report(map[string]float64{
		"BenchmarkNTTReference": 1400,
		"BenchmarkNTTForward":   280,
		"BenchmarkRotate":       560,
	})
	scale, err = refScale(old, realBad, "NTTReference", "ns/op")
	if err != nil {
		t.Fatal(err)
	}
	bad := Regressions(Compare(old, realBad, 0.25, trackDefault, "ns/op", scale))
	if len(bad) != 1 || !strings.Contains(bad[0].Name, "NTTForward") {
		t.Fatalf("regressions = %+v; want exactly NTTForward", bad)
	}
}

func TestRefScaleMissingReference(t *testing.T) {
	old := report(map[string]float64{"BenchmarkNTT": 100})
	new := report(map[string]float64{"BenchmarkNTT": 100})
	if _, err := refScale(old, new, "Nonexistent", "ns/op"); err == nil {
		t.Fatal("missing reference accepted")
	}
}

func writeReport(t *testing.T, dir, name string, r *Report) string {
	t.Helper()
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestCompareCLI exercises the full -compare command line: pass, fail, and
// bad usage.
func TestCompareCLI(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeReport(t, dir, "old.json", report(map[string]float64{"BenchmarkNTT": 100}))
	okPath := writeReport(t, dir, "ok.json", report(map[string]float64{"BenchmarkNTT": 110}))
	badPath := writeReport(t, dir, "bad.json", report(map[string]float64{"BenchmarkNTT": 200}))

	var out, errw strings.Builder
	if err := run([]string{"-compare", "-threshold", "0.25", oldPath, okPath}, strings.NewReader(""), &out, &errw); err != nil {
		t.Fatalf("passing compare failed: %v", err)
	}
	if !strings.Contains(out.String(), "OK:") {
		t.Errorf("missing OK line:\n%s", out.String())
	}

	out.Reset()
	err := run([]string{"-compare", "-threshold", "0.25", oldPath, badPath}, strings.NewReader(""), &out, &errw)
	if err == nil || !strings.Contains(err.Error(), "regressed") {
		t.Fatalf("regressing compare = %v; want regression error", err)
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Errorf("missing REGRESSION marker:\n%s", out.String())
	}

	if err := run([]string{"-compare", oldPath}, strings.NewReader(""), &out, &errw); err == nil {
		t.Fatal("compare with one file accepted")
	}
	if err := run([]string{"-compare", "-track", "(", oldPath, okPath}, strings.NewReader(""), &out, &errw); err == nil {
		t.Fatal("invalid -track regexp accepted")
	}
	// A track expression matching nothing is an error, not a silent pass.
	if err := run([]string{"-compare", "-track", "Nonexistent", oldPath, okPath}, strings.NewReader(""), &out, &errw); err == nil {
		t.Fatal("compare gating on zero benchmarks passed silently")
	}
	// -ref that matches nothing is an error too.
	if err := run([]string{"-compare", "-ref", "Nonexistent", oldPath, okPath}, strings.NewReader(""), &out, &errw); err == nil {
		t.Fatal("missing -ref benchmark accepted")
	}
	// With -ref pointing at the tracked benchmark itself, even the "bad"
	// report passes: the regression and the reference cancel (documents why
	// the reference must be a benchmark the change does not touch).
	out.Reset()
	if err := run([]string{"-compare", "-ref", "BenchmarkNTT", oldPath, badPath}, strings.NewReader(""), &out, &errw); err != nil {
		t.Fatalf("self-referencing compare failed: %v", err)
	}
	if !strings.Contains(out.String(), "normalization") {
		t.Errorf("missing normalization line:\n%s", out.String())
	}
}
