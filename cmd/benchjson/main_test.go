package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: eva/internal/ring
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkNTTForward/N=4096-8         	     100	     83491 ns/op
BenchmarkDivideByLastModulus-8       	      50	    156352 ns/op	  262330 B/op	       5 allocs/op
PASS
ok  	eva/internal/ring	0.129s
pkg: eva/internal/ckks
BenchmarkRotate-8                    	      10	  12441150 ns/op	  705111 B/op	      14 allocs/op
BenchmarkTable5-ish/LeNet-5-small-8  	       1	 123456789 ns/op	     0.5 eva-s	     1.2 chet-s
PASS
`

func TestParse(t *testing.T) {
	report, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if report.Goos != "linux" || report.Goarch != "amd64" {
		t.Errorf("platform = %s/%s", report.Goos, report.Goarch)
	}
	if len(report.Benchmarks) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4", len(report.Benchmarks))
	}
	b0 := report.Benchmarks[0]
	if b0.Name != "BenchmarkNTTForward/N=4096" {
		t.Errorf("name %q (GOMAXPROCS suffix not stripped?)", b0.Name)
	}
	if b0.Pkg != "eva/internal/ring" || b0.Iterations != 100 || b0.Metrics["ns/op"] != 83491 {
		t.Errorf("bad first benchmark: %+v", b0)
	}
	b1 := report.Benchmarks[1]
	if b1.Metrics["allocs/op"] != 5 || b1.Metrics["B/op"] != 262330 {
		t.Errorf("memory metrics not parsed: %+v", b1)
	}
	b2 := report.Benchmarks[2]
	if b2.Pkg != "eva/internal/ckks" {
		t.Errorf("pkg not tracked across sections: %+v", b2)
	}
	b3 := report.Benchmarks[3]
	if b3.Name != "BenchmarkTable5-ish/LeNet-5-small" {
		t.Errorf("sub-benchmark name with dashes mangled: %q", b3.Name)
	}
	if b3.Metrics["eva-s"] != 0.5 || b3.Metrics["chet-s"] != 1.2 {
		t.Errorf("custom ReportMetric units not parsed: %+v", b3)
	}
}

func TestParseIgnoresGarbage(t *testing.T) {
	report, err := Parse(strings.NewReader("BenchmarkBroken only-two\nnot a bench line\nBenchmarkNoMetrics-8 12\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Benchmarks) != 0 {
		t.Fatalf("parsed %d benchmarks from garbage", len(report.Benchmarks))
	}
}

func TestRunWritesFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := run([]string{"-o", path}, strings.NewReader(sampleOutput), io.Discard, io.Discard); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var report Report
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("emitted file is not valid JSON: %v", err)
	}
	if report.Schema != "eva-bench/v1" || len(report.Benchmarks) != 4 {
		t.Errorf("round-tripped report: schema=%q benchmarks=%d", report.Schema, len(report.Benchmarks))
	}
}

func TestRunEmptyInputErrors(t *testing.T) {
	if err := run(nil, strings.NewReader("no benchmarks here\n"), io.Discard, io.Discard); err == nil {
		t.Error("expected an error for input with no benchmark lines")
	}
}
