package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strings"
)

// CompareRow is the comparison of one tracked benchmark between two reports.
type CompareRow struct {
	Name string
	Old  float64
	New  float64
	// Delta is the fractional change: (New-Old)/Old. Positive = slower.
	Delta float64
	// Regressed is set when Delta exceeds the threshold.
	Regressed bool
	// MissingInNew is set when the old report tracks a benchmark the new one
	// no longer carries (reported, not failed: benchmarks get renamed).
	MissingInNew bool
}

// minByName collapses a report to one value per pkg-qualified benchmark
// name, keeping the minimum — with `go test -count=N` each benchmark
// appears N times, and the minimum is the standard noise-robust statistic
// (the fastest run had the least scheduler/cache interference).
func minByName(r *Report, metric string) (vals map[string]float64, order []string) {
	vals = map[string]float64{}
	for _, b := range r.Benchmarks {
		v, ok := b.Metrics[metric]
		if !ok || v <= 0 {
			continue
		}
		key := b.Pkg + "." + b.Name
		if prev, seen := vals[key]; !seen || v < prev {
			if !seen {
				order = append(order, key)
			}
			vals[key] = v
		}
	}
	return vals, order
}

// Compare gates new against old: every benchmark matching track (on the
// pkg-qualified name) present in old is looked up in new and compared on
// the given metric, taking the per-name minimum on both sides when a report
// carries repeated runs (-count=N). Every new-side value is multiplied by
// scale first (1 disables; see refScale for how the CLI derives it), and a
// benchmark regresses when its scaled new value exceeds old*(1+threshold).
// Rows come back sorted worst-first.
func Compare(old, new *Report, threshold float64, track *regexp.Regexp, metric string, scale float64) []CompareRow {
	if scale <= 0 {
		scale = 1
	}
	oldVals, oldOrder := minByName(old, metric)
	newVals, _ := minByName(new, metric)
	var rows []CompareRow
	for _, key := range oldOrder {
		if !track.MatchString(key) {
			continue
		}
		row := CompareRow{Name: key, Old: oldVals[key]}
		newV, ok := newVals[key]
		if !ok {
			row.MissingInNew = true
			rows = append(rows, row)
			continue
		}
		row.New = newV * scale
		row.Delta = (row.New - row.Old) / row.Old
		row.Regressed = row.Delta > threshold
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].MissingInNew != rows[j].MissingInNew {
			return rows[j].MissingInNew // missing rows last
		}
		return rows[i].Delta > rows[j].Delta
	})
	return rows
}

// Regressions filters the rows that breach the threshold.
func Regressions(rows []CompareRow) []CompareRow {
	var out []CompareRow
	for _, r := range rows {
		if r.Regressed {
			out = append(out, r)
		}
	}
	return out
}

func loadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

// refScale derives the machine-speed normalization factor from a reference
// benchmark present in both reports: oldRef/newRef. Multiplying every
// new-side value by it cancels uniform speed differences — a slower CI
// runner (or a noisy-neighbor phase) slows the reference by the same factor
// as the tracked ops, while a real regression in an optimized path moves a
// tracked op against the reference. The expression should single out a
// stable benchmark whose code the PR does not touch; when it matches
// several, the per-side minimum is used.
func refScale(old, new *Report, refExpr, metric string) (float64, error) {
	ref, err := regexp.Compile(refExpr)
	if err != nil {
		return 0, fmt.Errorf("invalid -ref expression: %w", err)
	}
	minMatch := func(r *Report) (float64, bool) {
		vals, order := minByName(r, metric)
		best, found := 0.0, false
		for _, key := range order {
			if !ref.MatchString(key) {
				continue
			}
			if !found || vals[key] < best {
				best, found = vals[key], true
			}
		}
		return best, found
	}
	oldRef, ok := minMatch(old)
	if !ok {
		return 0, fmt.Errorf("-ref %q matches no benchmark in the old report", refExpr)
	}
	newRef, ok := minMatch(new)
	if !ok {
		return 0, fmt.Errorf("-ref %q matches no benchmark in the new report", refExpr)
	}
	return oldRef / newRef, nil
}

// runCompare implements the -compare CLI mode.
func runCompare(oldPath, newPath string, threshold float64, trackExpr, refExpr, metric string, stdout io.Writer) error {
	track, err := regexp.Compile(trackExpr)
	if err != nil {
		return fmt.Errorf("invalid -track expression: %w", err)
	}
	oldRep, err := loadReport(oldPath)
	if err != nil {
		return err
	}
	newRep, err := loadReport(newPath)
	if err != nil {
		return err
	}
	scale := 1.0
	if refExpr != "" {
		if scale, err = refScale(oldRep, newRep, refExpr, metric); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "machine-speed normalization via -ref %q: new values scaled by %.3f\n", refExpr, scale)
	}
	rows := Compare(oldRep, newRep, threshold, track, metric, scale)
	if len(rows) == 0 {
		return fmt.Errorf("no benchmarks in %s match -track %q on metric %q", oldPath, trackExpr, metric)
	}
	fmt.Fprintf(stdout, "%-70s %14s %14s %8s\n", "benchmark ("+metric+")", "old", "new", "delta")
	for _, r := range rows {
		if r.MissingInNew {
			fmt.Fprintf(stdout, "%-70s %14.1f %14s %8s\n", r.Name, r.Old, "missing", "-")
			continue
		}
		mark := ""
		if r.Regressed {
			mark = "  << REGRESSION"
		}
		fmt.Fprintf(stdout, "%-70s %14.1f %14.1f %+7.1f%%%s\n", r.Name, r.Old, r.New, 100*r.Delta, mark)
	}
	if bad := Regressions(rows); len(bad) > 0 {
		names := make([]string, len(bad))
		for i, r := range bad {
			names[i] = fmt.Sprintf("%s (%+.1f%%)", r.Name, 100*r.Delta)
		}
		return fmt.Errorf("%d tracked benchmark(s) regressed past the %.0f%% threshold: %s",
			len(bad), 100*threshold, strings.Join(names, ", "))
	}
	fmt.Fprintf(stdout, "OK: no tracked benchmark regressed past %.0f%%\n", 100*threshold)
	return nil
}
