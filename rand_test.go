package eva_test

import "math/rand"

// newRand returns a deterministic math/rand source for benchmark inputs.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
