package eva

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"eva/internal/jobs"
	"eva/internal/obs"
	"eva/internal/profile"
	"eva/internal/serve"
)

// TraceHeader is the header evaserve uses to propagate (and answer with) a
// request's trace id. Every response carries it; clients may also set it on
// a request to adopt a caller-chosen id.
const TraceHeader = obs.TraceHeader

// Wire types of the evaserve HTTP API, re-exported so client code does not
// reach into internal packages.
type (
	// CompileRequest is the body of POST /compile.
	CompileRequest = serve.CompileRequest
	// CompileResponse is the body returned by POST /compile.
	CompileResponse = serve.CompileResponse
	// ContextRequest is the body of POST /contexts.
	ContextRequest = serve.ContextRequest
	// ContextResponse is the body returned by POST /contexts.
	ContextResponse = serve.ContextResponse
	// ExecuteBatch is one input set of an execute or job request.
	ExecuteBatch = serve.ExecuteBatch
	// ExecuteRequest is the body of POST /execute/{id}.
	ExecuteRequest = serve.ExecuteRequest
	// ExecuteResponse is the body returned by POST /execute/{id}.
	ExecuteResponse = serve.ExecuteResponse
	// BatchResult is one batch's execution result.
	BatchResult = serve.BatchResult
	// JobRequest is the body of POST /jobs.
	JobRequest = serve.JobRequest
	// JobStatusInfo is the wire form of an async job's state.
	JobStatusInfo = serve.JobStatus
	// JobResult is the body of GET /jobs/{id}/result.
	JobResult = serve.JobResult
	// CoalesceResponse is the body returned by POST /jobs?coalesce=1.
	CoalesceResponse = serve.CoalesceResponse
	// JobEvent is one entry of a job's progress stream (SSE payload).
	JobEvent = jobs.Event
	// JobTrace is the span tree of one job's trace
	// (GET /jobs/{id}/trace).
	JobTrace = obs.TraceJSON
	// JobTraceSpan is one span of a JobTrace.
	JobTraceSpan = obs.SpanJSON
	// ProfileReport is the instruction profiler's aggregate (GET /profile).
	ProfileReport = profile.Report
	// ProfileCalibration is a fitted set of per-opcode cost-model
	// coefficients (evaserve -calibrate).
	ProfileCalibration = profile.Calibration
)

// ClusterProfile is the body of GET /profile?scope=cluster on a cluster
// node: each member's raw report (or an error placeholder for unreachable
// nodes) plus the merged cluster-wide view.
type ClusterProfile struct {
	Scope  string                     `json:"scope"`
	Nodes  map[string]json.RawMessage `json:"nodes"`
	Merged ProfileReport              `json:"merged"`
}

// APIError is a non-2xx response from evaserve, carrying the decoded error
// body and, for 429 responses, the server's Retry-After hint.
type APIError struct {
	Status     int
	Message    string
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("evaserve: HTTP %d: %s", e.Status, e.Message)
}

// Overloaded reports whether the request was shed by admission control and
// is worth retrying after a backoff.
func (e *APIError) Overloaded() bool { return e.Status == http.StatusTooManyRequests }

// Unavailable reports whether the server (or, in a cluster, the node a
// router tried to reach on the caller's behalf) was temporarily unable to
// serve the request: 502 from a routing hop whose target is down, or 503
// from a draining or requeueing node. Like Overloaded, the condition is
// transient and worth retrying after a backoff.
func (e *APIError) Unavailable() bool {
	return e.Status == http.StatusServiceUnavailable || e.Status == http.StatusBadGateway
}

// Transient reports whether the error is worth retrying at all: a shed
// (429) or an unavailable hop (502/503).
func (e *APIError) Transient() bool { return e.Overloaded() || e.Unavailable() }

// Client is a client for an evaserve instance: the synchronous compile /
// contexts / execute endpoints plus the asynchronous jobs API (submit, poll,
// stream progress over SSE, fetch the result once, cancel).
type Client struct {
	// BaseURL is the server root, e.g. "http://localhost:8080".
	BaseURL string
	// HTTP is the underlying client (http.DefaultClient when nil).
	HTTP *http.Client
}

// NewClient returns a Client for the server at baseURL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// do round-trips a JSON request and decodes a JSON response into out,
// converting non-2xx statuses into *APIError.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	return c.doWith(ctx, method, path, nil, body, out)
}

// doWith is do with extra request headers (e.g. a caller-chosen trace id).
func (c *Client) doWith(ctx context.Context, method, path string, header http.Header, body, out any) error {
	var rd io.Reader
	if body != nil {
		payload, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, rd)
	if err != nil {
		return err
	}
	for k, vs := range header {
		req.Header[k] = vs
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		return decodeAPIError(resp)
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func decodeAPIError(resp *http.Response) error {
	apiErr := &APIError{Status: resp.StatusCode}
	var body struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err == nil && body.Error != "" {
		apiErr.Message = body.Error
	} else {
		apiErr.Message = resp.Status
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil {
			apiErr.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	return apiErr
}

// DoRaw performs one round-trip without interpreting the response: the
// caller owns the returned body and must close it. The cluster tier uses it
// to proxy whole requests — including SSE event streams — between nodes
// while reusing the client's base-URL handling and transport.
func (c *Client) DoRaw(ctx context.Context, method, path string, header http.Header, body io.Reader) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, body)
	if err != nil {
		return nil, err
	}
	for k, vs := range header {
		req.Header[k] = vs
	}
	return c.httpClient().Do(req)
}

// Health fetches GET /healthz — the probe the cluster tier uses to track
// peer liveness.
func (c *Client) Health(ctx context.Context) (serve.HealthResponse, error) {
	var out serve.HealthResponse
	err := c.do(ctx, http.MethodGet, "/healthz", nil, &out)
	return out, err
}

// RetryPolicy bounds DoWithRetry's exponential backoff.
type RetryPolicy struct {
	// MaxAttempts caps the total tries. 0 means the default of 5; a
	// negative value retries until ctx expires.
	MaxAttempts int
	// BaseDelay is the first backoff (default 100ms); each subsequent
	// backoff doubles, capped at MaxDelay (default 5s). A Retry-After hint
	// from the server overrides the computed delay for that attempt.
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// Method and Path, when set, name the route op performs so the retry
	// loop can refuse to replay operations that are not idempotent: a 502
	// from a routing hop is ambiguous — the request may have reached the
	// worker and only the response was lost — and replaying a DELETE or a
	// job submit then duplicates the side effect. Left empty, every
	// transient error is retried (the caller asserts idempotency).
	Method string
	Path   string
}

// IdempotentRoute reports whether replaying a request against the evaserve
// API cannot duplicate a side effect: reads are safe except the fetch-once
// job result (a replay after a lost response answers 410), PUT /handles is
// content-addressed (re-storing identical bytes is a dedup hit), and POST
// submits and DELETEs are not safe — a replayed DELETE can race a
// concurrent re-store of the same content address.
func IdempotentRoute(method, path string) bool {
	switch method {
	case http.MethodGet, http.MethodHead:
		return !strings.HasSuffix(path, "/result")
	case http.MethodPut:
		return true
	default:
		return false
	}
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts == 0 {
		p.MaxAttempts = 5
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 100 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 5 * time.Second
	}
	return p
}

// DoWithRetry runs op, retrying transient failures — requests the server
// shed with 429 or answered 502/503 — under bounded exponential backoff,
// honoring the server's Retry-After hint when one is present. Any other
// error (including context cancellation) returns immediately; exhausting
// the attempts returns the last transient error. onRetry, when non-nil, is
// called before each backoff sleep with the attempt number (1-based) and
// the error being retried — load generators use it to count sheds.
//
// When policy names a non-idempotent route (Method/Path), ambiguous
// failures (502/503, where the request may have executed) are returned
// without retry; admission sheds (429) are always retried — a shed request
// never ran.
func (c *Client) DoWithRetry(ctx context.Context, policy RetryPolicy, op func(context.Context) error, onRetry func(attempt int, err error)) error {
	policy = policy.withDefaults()
	delay := policy.BaseDelay
	for attempt := 1; ; attempt++ {
		err := op(ctx)
		if err == nil {
			return nil
		}
		var apiErr *APIError
		if !errors.As(err, &apiErr) || !apiErr.Transient() {
			return err
		}
		if apiErr.Unavailable() && policy.Method != "" && !IdempotentRoute(policy.Method, policy.Path) {
			return err
		}
		if policy.MaxAttempts > 0 && attempt >= policy.MaxAttempts {
			return err
		}
		wait := delay
		if apiErr.RetryAfter > 0 {
			wait = apiErr.RetryAfter
		}
		if wait > policy.MaxDelay {
			wait = policy.MaxDelay
		}
		if onRetry != nil {
			onRetry(attempt, err)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(wait):
		}
		if delay *= 2; delay > policy.MaxDelay {
			delay = policy.MaxDelay
		}
	}
}

// Compile submits a program for compilation.
func (c *Client) Compile(ctx context.Context, req CompileRequest) (CompileResponse, error) {
	var out CompileResponse
	err := c.do(ctx, http.MethodPost, "/compile", req, &out)
	return out, err
}

// NewKeygenContext installs a server-keygen (demo mode) execution context
// for a compiled program. The server must run with -demo.
func (c *Client) NewKeygenContext(ctx context.Context, programID string, seed uint64) (ContextResponse, error) {
	var out ContextResponse
	err := c.do(ctx, http.MethodPost, "/contexts", ContextRequest{
		ProgramID: programID,
		Keygen:    &serve.KeygenJSON{Seed: seed},
	}, &out)
	return out, err
}

// Execute runs batches synchronously (POST /execute/{id}).
func (c *Client) Execute(ctx context.Context, programID string, req ExecuteRequest) (ExecuteResponse, error) {
	var out ExecuteResponse
	err := c.do(ctx, http.MethodPost, "/execute/"+programID, req, &out)
	return out, err
}

// SubmitJob enqueues an asynchronous execution (POST /jobs) and returns
// immediately with the job's id. When the server sheds the submission the
// returned error is an *APIError with Overloaded() == true; retry after its
// RetryAfter hint.
//
// Deprecated: use Submit, which consolidates the per-variant submission
// knobs (output mode, coalescing, trace adoption) into SubmitOptions. This
// wrapper is equivalent to Submit with the options already inlined in req.
func (c *Client) SubmitJob(ctx context.Context, req JobRequest) (JobStatusInfo, error) {
	res, err := c.Submit(ctx, req.ProgramID, req.ContextID, req.Batches, SubmitOptions{
		Workers:   req.Workers,
		Scheduler: req.Scheduler,
		Output:    req.Output,
	})
	return res.Job, err
}

// SubmitCoalesced submits a single-batch job to the server's request
// coalescer (POST /jobs?coalesce=1); see SubmitOptions.Coalesce for the
// semantics and compatibility rules.
//
// Deprecated: use Submit with SubmitOptions{Coalesce: true}.
func (c *Client) SubmitCoalesced(ctx context.Context, req JobRequest) (CoalesceResponse, error) {
	res, err := c.Submit(ctx, req.ProgramID, req.ContextID, req.Batches, SubmitOptions{
		Workers:   req.Workers,
		Scheduler: req.Scheduler,
		Output:    req.Output,
		Coalesce:  true,
	})
	if err != nil {
		return CoalesceResponse{}, err
	}
	return *res.Coalesced, nil
}

// JobStatus polls a job (GET /jobs/{id}).
func (c *Client) JobStatus(ctx context.Context, jobID string) (JobStatusInfo, error) {
	var out JobStatusInfo
	err := c.do(ctx, http.MethodGet, "/jobs/"+jobID, nil, &out)
	return out, err
}

// CancelJob cancels a queued or running job (DELETE /jobs/{id}).
func (c *Client) CancelJob(ctx context.Context, jobID string) (JobStatusInfo, error) {
	var out JobStatusInfo
	err := c.do(ctx, http.MethodDelete, "/jobs/"+jobID, nil, &out)
	return out, err
}

// FetchJobResult fetches a finished job's result (GET /jobs/{id}/result).
// Results are delivered exactly once; a second fetch fails with HTTP 410.
func (c *Client) FetchJobResult(ctx context.Context, jobID string) (JobResult, error) {
	var out JobResult
	err := c.do(ctx, http.MethodGet, "/jobs/"+jobID+"/result", nil, &out)
	return out, err
}

// FetchJobTrace fetches a job's span tree (GET /jobs/{id}/trace): the
// end-to-end breakdown of where the job spent its time (queue wait, per-op
// execution, store write; on a cluster, the routing hops too). Traces live
// in a bounded ring on the worker node, so an old job's trace may be gone
// (HTTP 404).
func (c *Client) FetchJobTrace(ctx context.Context, jobID string) (JobTrace, error) {
	var out JobTrace
	err := c.do(ctx, http.MethodGet, "/jobs/"+jobID+"/trace", nil, &out)
	return out, err
}

// FetchProfile fetches the node's instruction-profiler report
// (GET /profile): per-(opcode, level) latency/alloc histograms, drift events
// against the compiler's expectations, per-program sample counts, and the
// installed calibration.
func (c *Client) FetchProfile(ctx context.Context) (ProfileReport, error) {
	var out ProfileReport
	err := c.do(ctx, http.MethodGet, "/profile", nil, &out)
	return out, err
}

// FetchClusterProfile fetches GET /profile?scope=cluster: every cluster
// member's report plus the merged cluster-wide aggregate. Against a
// standalone server the scope parameter is ignored and the merged field is
// empty — use FetchProfile there.
func (c *Client) FetchClusterProfile(ctx context.Context) (ClusterProfile, error) {
	var out ClusterProfile
	err := c.do(ctx, http.MethodGet, "/profile?scope=cluster", nil, &out)
	return out, err
}

// StreamJobEvents subscribes to GET /jobs/{id}/events and calls fn for every
// event, starting with the job's full history. It returns nil when the
// stream ends with the job's terminal event, ctx.Err() on cancellation, or
// fn's error if fn aborts the stream.
func (c *Client) StreamJobEvents(ctx context.Context, jobID string, fn func(JobEvent) error) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/jobs/"+jobID+"/events", nil)
	if err != nil {
		return err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeAPIError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	for sc.Scan() {
		data, ok := strings.CutPrefix(sc.Text(), "data: ")
		if !ok {
			continue
		}
		var ev JobEvent
		if err := json.Unmarshal([]byte(data), &ev); err != nil {
			return fmt.Errorf("eva: decoding job event: %w", err)
		}
		if err := fn(ev); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		return err
	}
	return nil
}

// WaitJob blocks until the job reaches a terminal status, preferring the
// event stream and falling back to polling if streaming fails.
func (c *Client) WaitJob(ctx context.Context, jobID string) (JobStatusInfo, error) {
	var terminal bool
	err := c.StreamJobEvents(ctx, jobID, func(ev JobEvent) error {
		switch ev.Type {
		case "done", "failed", "cancelled":
			terminal = true
		}
		return nil
	})
	if err == nil && !terminal {
		err = errors.New("eva: event stream ended before the job finished")
	}
	if err != nil && ctx.Err() != nil {
		return JobStatusInfo{}, ctx.Err()
	}
	if err != nil {
		// Fall back to polling: the stream may have been cut by a proxy.
		for {
			st, perr := c.JobStatus(ctx, jobID)
			if perr != nil {
				return st, perr
			}
			switch st.Status {
			case string(jobs.StatusDone), string(jobs.StatusFailed), string(jobs.StatusCancelled):
				return st, nil
			}
			select {
			case <-ctx.Done():
				return st, ctx.Err()
			case <-time.After(50 * time.Millisecond):
			}
		}
	}
	return c.JobStatus(ctx, jobID)
}
