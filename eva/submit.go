package eva

import (
	"context"
	"net/http"
)

// SubmitOptions consolidates every job-submission knob of the asynchronous
// jobs API into one struct: executor parallelism, the result form, request
// coalescing, and distributed-trace adoption. The zero value submits an
// ordinary asynchronous job with the server's defaults.
//
// Submit replaces the accreted per-variant entry points (SubmitJob,
// SubmitCoalesced) and the option fields inlined in JobRequest; those remain
// as deprecated wrappers.
type SubmitOptions struct {
	// Workers overrides the executor worker count for this job (0 = the
	// server's default; the server clamps excessive values).
	Workers int
	// Scheduler selects the executor scheduler: "" or "parallel" (DAG
	// parallel), "bulk" (bulk-synchronous by level), or "sequential".
	Scheduler string
	// Output selects the result form: "" returns ciphertext payloads
	// (decrypted values on demo contexts), "handle" persists every encrypted
	// output as a content-addressed handle and returns ids, "values" forces
	// decryption (final results on demo contexts only).
	Output string
	// Coalesce routes a single-batch submission through the server's request
	// coalescer (POST /jobs?coalesce=1): the server packs compatible
	// concurrent callers into disjoint slot ranges of one shared execution
	// and Submit blocks until that batch has run, returning this caller's
	// own slice of the results in SubmitResult.Coalesced. The program must
	// be rotation-free with a narrow input width, the context must be a
	// server-keygen (demo) context, and co-batched callers share a
	// ciphertext — see the README's "Request coalescing" section for the
	// compatibility rules and trust model. Cancelling ctx while waiting
	// evicts only this caller; co-batched requests proceed.
	Coalesce bool
	// TraceID, when set, is sent as the X-Eva-Trace request header so the
	// server adopts a caller-chosen distributed trace id instead of minting
	// one; the job's trace (GET /jobs/{id}/trace) is then findable under it.
	TraceID string
}

// SubmitResult is the outcome of Submit. For ordinary asynchronous
// submissions Job carries the accepted job's status snapshot (poll, stream,
// and fetch by Job.JobID). For coalesced submissions (SubmitOptions.Coalesce)
// Coalesced carries this caller's demultiplexed slice of the shared batch's
// results and Job is zero.
type SubmitResult struct {
	Job       JobStatusInfo
	Coalesced *CoalesceResponse
}

// Submit enqueues batches of encrypted (or demo plaintext) inputs for
// asynchronous execution of a compiled program under an installed context.
// opts selects everything else: worker count, scheduler, result form,
// coalescing, and trace adoption. When the server sheds the submission the
// returned error is an *APIError with Overloaded() == true; retry after its
// RetryAfter hint (DoWithRetry does this).
func (c *Client) Submit(ctx context.Context, programID, contextID string, batches []ExecuteBatch, opts SubmitOptions) (SubmitResult, error) {
	req := JobRequest{
		ProgramID: programID,
		ContextID: contextID,
		Workers:   opts.Workers,
		Scheduler: opts.Scheduler,
		Output:    opts.Output,
		Batches:   batches,
	}
	var header http.Header
	if opts.TraceID != "" {
		header = http.Header{TraceHeader: []string{opts.TraceID}}
	}
	if opts.Coalesce {
		var out CoalesceResponse
		if err := c.doWith(ctx, http.MethodPost, "/jobs?coalesce=1", header, req, &out); err != nil {
			return SubmitResult{}, err
		}
		return SubmitResult{Coalesced: &out}, nil
	}
	var out JobStatusInfo
	if err := c.doWith(ctx, http.MethodPost, "/jobs", header, req, &out); err != nil {
		return SubmitResult{}, err
	}
	return SubmitResult{Job: out}, nil
}
