package eva_test

import (
	"math"
	"testing"

	"eva/eva"
)

// TestPublicAPIWorkflow exercises the documented four-step workflow end to
// end through the public facade only.
func TestPublicAPIWorkflow(t *testing.T) {
	b := eva.NewBuilder("facade", 8)
	x := b.Input("x", 30)
	y := b.Input("y", 30)
	b.Output("poly", x.Square().Add(y).MulScalar(0.5, 30), 30)
	b.Output("shifted", x.RotateLeft(2), 30)
	program, err := b.Program()
	if err != nil {
		t.Fatal(err)
	}

	opts := eva.DefaultCompileOptions()
	opts.AllowInsecure = true
	compiled, err := eva.Compile(program, opts)
	if err != nil {
		t.Fatal(err)
	}
	if compiled.Plan.NumPrimes() < 2 || compiled.LogN < 10 {
		t.Fatalf("implausible compilation result: %s", compiled.Summary())
	}

	prng := eva.NewTestPRNG(99)
	ctx, keys, err := eva.NewContext(compiled, prng)
	if err != nil {
		t.Fatal(err)
	}
	inputs := eva.Inputs{"x": {1, 2, 3, 4, 5, 6, 7, 8}, "y": {1, 1, 1, 1, 1, 1, 1, 1}}
	encrypted, err := eva.EncryptInputs(ctx, compiled, keys, inputs, prng)
	if err != nil {
		t.Fatal(err)
	}
	outputs, err := eva.Run(ctx, compiled, encrypted, eva.RunOptions{Scheduler: eva.SchedulerParallel})
	if err != nil {
		t.Fatal(err)
	}
	decrypted := eva.DecryptOutputs(ctx, compiled, keys, outputs)
	reference, err := eva.RunReference(program, inputs)
	if err != nil {
		t.Fatal(err)
	}
	for name, want := range reference {
		got := decrypted[name]
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-3 {
				t.Fatalf("output %q slot %d: got %g want %g", name, i, got[i], want[i])
			}
		}
	}
}

// TestPublicAPISourceRoundTrip checks the textual language is reachable
// through the facade: ParseSource and FormatProgram are inverse up to the
// IR, and a source-parsed program compiles like a builder-built one.
func TestPublicAPISourceRoundTrip(t *testing.T) {
	program, err := eva.ParseSource(`
program facade vec=8;
input x @30;
input y @30;
output poly = (x * x + y) * 0.5@30 @30;
output shifted = rotl(x, 2) @30;
`)
	if err != nil {
		t.Fatal(err)
	}
	src, err := eva.FormatProgram(program)
	if err != nil {
		t.Fatal(err)
	}
	again, err := eva.ParseSource(src)
	if err != nil {
		t.Fatalf("formatted source does not re-parse: %v\n%s", err, src)
	}
	if again.NumTerms() != program.NumTerms() || len(again.Outputs()) != 2 {
		t.Fatalf("round trip changed the program: %d terms vs %d", again.NumTerms(), program.NumTerms())
	}
	opts := eva.DefaultCompileOptions()
	opts.AllowInsecure = true
	if _, err := eva.Compile(program, opts); err != nil {
		t.Fatalf("source-parsed program does not compile: %v", err)
	}
	if _, err := eva.ParseSource("program broken vec=8;\noutput o = zz @30;"); err == nil {
		t.Fatal("ParseSource accepted an undefined name")
	}
}

// TestPublicAPISchedulers checks the exported scheduler and strategy constants
// are usable through the facade.
func TestPublicAPISchedulersAndStrategies(t *testing.T) {
	b := eva.NewBuilder("sched", 8)
	x := b.Input("x", 30)
	b.Output("out", x.Square(), 30)
	program, err := b.Program()
	if err != nil {
		t.Fatal(err)
	}
	opts := eva.DefaultCompileOptions()
	opts.AllowInsecure = true
	opts.Rescale = eva.RescaleAlways
	opts.ModSwitch = eva.ModSwitchLazy
	compiled, err := eva.Compile(program, opts)
	if err != nil {
		t.Fatal(err)
	}
	ctx, keys, err := eva.NewContext(compiled, eva.NewTestPRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	enc, err := eva.EncryptInputs(ctx, compiled, keys, eva.Inputs{"x": {0.5, 0.25}}, eva.NewTestPRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	for _, sched := range []eva.RunOptions{
		{Scheduler: eva.SchedulerParallel},
		{Scheduler: eva.SchedulerBulkSynchronous},
		{Scheduler: eva.SchedulerSequential},
	} {
		out, err := eva.Run(ctx, compiled, enc, sched)
		if err != nil {
			t.Fatal(err)
		}
		got := eva.DecryptOutputs(ctx, compiled, keys, out)["out"]
		if math.Abs(got[0]-0.25) > 1e-3 {
			t.Fatalf("out[0] = %g, want 0.25", got[0])
		}
	}
}
