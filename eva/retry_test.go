package eva_test

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"eva/eva"
)

// flakyHandler sheds the first n requests with the given status, then
// succeeds.
func flakyHandler(n int32, status int, retryAfter string) (*atomic.Int32, http.Handler) {
	var served atomic.Int32
	return &served, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if served.Add(1) <= n {
			if retryAfter != "" {
				w.Header().Set("Retry-After", retryAfter)
			}
			w.WriteHeader(status)
			w.Write([]byte(`{"error":"try later"}`))
			return
		}
		w.WriteHeader(http.StatusOK)
		w.Write([]byte(`{"status":"ok"}`))
	})
}

func TestDoWithRetryRecovers(t *testing.T) {
	for _, status := range []int{http.StatusTooManyRequests, http.StatusServiceUnavailable, http.StatusBadGateway} {
		served, h := flakyHandler(2, status, "")
		ts := httptest.NewServer(h)
		c := eva.NewClient(ts.URL)
		retries := 0
		err := c.DoWithRetry(context.Background(), eva.RetryPolicy{BaseDelay: time.Millisecond},
			func(ctx context.Context) error { _, err := c.Health(ctx); return err },
			func(attempt int, err error) { retries++ })
		ts.Close()
		if err != nil {
			t.Errorf("status %d: %v", status, err)
		}
		if retries != 2 || served.Load() != 3 {
			t.Errorf("status %d: %d retries, %d requests; want 2 and 3", status, retries, served.Load())
		}
	}
}

func TestDoWithRetryHonorsRetryAfter(t *testing.T) {
	_, h := flakyHandler(1, http.StatusTooManyRequests, "1")
	ts := httptest.NewServer(h)
	defer ts.Close()
	c := eva.NewClient(ts.URL)
	start := time.Now()
	err := c.DoWithRetry(context.Background(), eva.RetryPolicy{BaseDelay: time.Millisecond},
		func(ctx context.Context) error { _, err := c.Health(ctx); return err }, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The server's 1s hint must override the 1ms base delay.
	if elapsed := time.Since(start); elapsed < 900*time.Millisecond {
		t.Errorf("retried after %v; the 1s Retry-After hint was ignored", elapsed)
	}
}

func TestDoWithRetryGivesUpAfterMaxAttempts(t *testing.T) {
	served, h := flakyHandler(1000, http.StatusServiceUnavailable, "")
	ts := httptest.NewServer(h)
	defer ts.Close()
	c := eva.NewClient(ts.URL)
	err := c.DoWithRetry(context.Background(), eva.RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond},
		func(ctx context.Context) error { _, err := c.Health(ctx); return err }, nil)
	var apiErr *eva.APIError
	if !errors.As(err, &apiErr) || !apiErr.Unavailable() {
		t.Fatalf("err = %v; want an unavailable APIError", err)
	}
	if served.Load() != 3 {
		t.Errorf("%d requests; want exactly MaxAttempts = 3", served.Load())
	}
}

func TestDoWithRetryDoesNotRetryPermanentErrors(t *testing.T) {
	served, h := flakyHandler(1000, http.StatusBadRequest, "")
	ts := httptest.NewServer(h)
	defer ts.Close()
	c := eva.NewClient(ts.URL)
	err := c.DoWithRetry(context.Background(), eva.RetryPolicy{BaseDelay: time.Millisecond},
		func(ctx context.Context) error { _, err := c.Health(ctx); return err }, nil)
	var apiErr *eva.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
		t.Fatalf("err = %v; want the 400 APIError", err)
	}
	if served.Load() != 1 {
		t.Errorf("%d requests for a permanent error; want 1", served.Load())
	}
}

func TestIdempotentRoute(t *testing.T) {
	cases := []struct {
		method, path string
		want         bool
	}{
		{http.MethodGet, "/handles/abc", true},
		{http.MethodGet, "/jobs/1", true},
		{http.MethodGet, "/jobs/1/result", false}, // fetch-once
		{http.MethodPut, "/handles", true},        // content-addressed
		{http.MethodPost, "/jobs", false},
		{http.MethodPost, "/pipelines", false},
		{http.MethodDelete, "/handles/abc", false},
		{http.MethodDelete, "/jobs/1", false},
	}
	for _, c := range cases {
		if got := eva.IdempotentRoute(c.method, c.path); got != c.want {
			t.Errorf("IdempotentRoute(%s %s) = %v, want %v", c.method, c.path, got, c.want)
		}
	}
}

// TestDoWithRetryRefusesNonIdempotentReplay: an ambiguous 502/503 on a
// handle DELETE must not be replayed — the request may have reached the
// worker — while an admission shed (429) is always safe to retry.
func TestDoWithRetryRefusesNonIdempotentReplay(t *testing.T) {
	policy := eva.RetryPolicy{BaseDelay: time.Millisecond,
		Method: http.MethodDelete, Path: "/handles/abc"}

	served, h := flakyHandler(1000, http.StatusBadGateway, "")
	ts := httptest.NewServer(h)
	c := eva.NewClient(ts.URL)
	err := c.DoWithRetry(context.Background(), policy,
		func(ctx context.Context) error { return c.DeleteHandle(ctx, "abc") }, nil)
	ts.Close()
	var apiErr *eva.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadGateway {
		t.Fatalf("err = %v; want the 502 APIError", err)
	}
	if served.Load() != 1 {
		t.Errorf("%d DELETE attempts after an ambiguous 502; want exactly 1", served.Load())
	}

	served, h = flakyHandler(2, http.StatusTooManyRequests, "")
	ts = httptest.NewServer(h)
	defer ts.Close()
	c = eva.NewClient(ts.URL)
	err = c.DoWithRetry(context.Background(), policy,
		func(ctx context.Context) error { return c.DeleteHandle(ctx, "abc") }, nil)
	if err != nil {
		t.Fatalf("shed DELETE should retry to success: %v", err)
	}
	if served.Load() != 3 {
		t.Errorf("%d requests; want 3 (two sheds + success)", served.Load())
	}
}

func TestDoWithRetryUnboundedStopsOnContext(t *testing.T) {
	_, h := flakyHandler(1_000_000, http.StatusTooManyRequests, "")
	ts := httptest.NewServer(h)
	defer ts.Close()
	c := eva.NewClient(ts.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	err := c.DoWithRetry(ctx, eva.RetryPolicy{MaxAttempts: -1, BaseDelay: time.Millisecond},
		func(ctx context.Context) error { _, err := c.Health(ctx); return err }, nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v; want deadline exceeded", err)
	}
}
