package eva_test

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"

	"eva/eva"
	"eva/internal/serve"
)

// startDemoServer runs an in-process evaserve in demo mode.
func startDemoServer(t *testing.T, cfg serve.Config) *eva.Client {
	t.Helper()
	cfg.AllowServerKeygen = true
	s := serve.NewServer(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(s.Close)
	c := eva.NewClient(ts.URL)
	c.HTTP = ts.Client()
	return c
}

func clientProgramSource() string {
	return `program client vec=8;
input x @30;
out = x * x;
output out @30;`
}

// TestClientJobsRoundTrip drives the full async workflow through the public
// client: compile from source, keygen context, submit, stream events, wait,
// fetch the result exactly once.
func TestClientJobsRoundTrip(t *testing.T) {
	c := startDemoServer(t, serve.Config{})
	ctx := context.Background()

	comp, err := c.Compile(ctx, eva.CompileRequest{
		Source:  clientProgramSource(),
		Options: &serve.CompileOptionsJSON{AllowInsecure: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	ectx, err := c.NewKeygenContext(ctx, comp.ID, 9)
	if err != nil {
		t.Fatal(err)
	}
	const traceID = "0123456789abcdef0123456789abcdef"
	sub, err := c.Submit(ctx, comp.ID, ectx.ContextID, []eva.ExecuteBatch{
		{Values: map[string][]float64{"x": {1, 2, 3, 4, 5, 6, 7, 8}}},
		{Values: map[string][]float64{"x": {2, 2, 2, 2, 2, 2, 2, 2}}},
	}, eva.SubmitOptions{TraceID: traceID})
	if err != nil {
		t.Fatal(err)
	}
	job := sub.Job
	if job.JobID == "" {
		t.Fatal("empty job id")
	}
	if job.TraceID != traceID {
		t.Fatalf("job adopted trace %q; want the caller-chosen %q", job.TraceID, traceID)
	}
	if sub.Coalesced != nil {
		t.Fatal("uncoalesced submission returned a Coalesced result")
	}

	var types []string
	if err := c.StreamJobEvents(ctx, job.JobID, func(ev eva.JobEvent) error {
		types = append(types, ev.Type)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(types) == 0 || types[len(types)-1] != "done" {
		t.Fatalf("event stream %v; want it to end with done", types)
	}

	final, err := c.WaitJob(ctx, job.JobID)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != "done" || final.BatchesDone != 2 {
		t.Fatalf("final status %+v", final)
	}

	res, err := c.FetchJobResult(ctx, job.JobID)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != 2 {
		t.Fatalf("%d results; want 2", len(res.Results))
	}
	for i, want := range []float64{1, 4} { // first slot of x*x per batch
		got := res.Results[i].Values["out"]
		if len(got) == 0 || got[0] < want-0.05 || got[0] > want+0.05 {
			t.Errorf("batch %d out[0] = %v; want ~%v", i, got, want)
		}
	}

	// Fetch-once: the second fetch surfaces as a 410 APIError.
	if _, err := c.FetchJobResult(ctx, job.JobID); err == nil {
		t.Fatal("second fetch succeeded; want 410")
	} else {
		var apiErr *eva.APIError
		if !errors.As(err, &apiErr) || apiErr.Status != 410 {
			t.Fatalf("second fetch error = %v; want *APIError with status 410", err)
		}
	}
}

// TestClientOverloadedError: admission-control sheds surface as APIError
// with Overloaded() and a RetryAfter hint.
func TestClientOverloadedError(t *testing.T) {
	// Budget of 1 byte: every real job estimate exceeds it outright (413),
	// so occupy the budget path via queue depth instead: workers=1, depth=1,
	// and a pile of submissions.
	c := startDemoServer(t, serve.Config{JobWorkers: 1, JobQueueDepth: 1})
	ctx := context.Background()
	comp, err := c.Compile(ctx, eva.CompileRequest{
		Source:  clientProgramSource(),
		Options: &serve.CompileOptionsJSON{AllowInsecure: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	ectx, err := c.NewKeygenContext(ctx, comp.ID, 9)
	if err != nil {
		t.Fatal(err)
	}
	// Enough batches that the worker cannot drain before the queue fills.
	batches := make([]eva.ExecuteBatch, 64)
	for i := range batches {
		batches[i] = eva.ExecuteBatch{Values: map[string][]float64{"x": {1, 2, 3, 4}}}
	}
	var sawOverload bool
	for i := 0; i < 16 && !sawOverload; i++ {
		_, err := c.Submit(ctx, comp.ID, ectx.ContextID, batches, eva.SubmitOptions{})
		if err == nil {
			continue
		}
		var apiErr *eva.APIError
		if !errors.As(err, &apiErr) {
			t.Fatalf("submit error = %v; want *APIError", err)
		}
		if apiErr.Overloaded() {
			sawOverload = true
			if apiErr.RetryAfter <= 0 {
				t.Error("overloaded error without RetryAfter hint")
			}
		}
	}
	if !sawOverload {
		t.Fatal("never saw an overloaded (429) submission")
	}
}

// TestClientSubmitCoalesced drives the request coalescer through the
// consolidated Submit entry point: a rotation-free width-4 program on a
// 32-slot vector, several concurrent callers, each getting back only its own
// stride of the shared execution.
func TestClientSubmitCoalesced(t *testing.T) {
	c := startDemoServer(t, serve.Config{})
	ctx := context.Background()
	comp, err := c.Compile(ctx, eva.CompileRequest{
		Source: `program co vec=32;
input x: cipher width=4 @30;
out = x * x;
output out @30;`,
		Options: &serve.CompileOptionsJSON{AllowInsecure: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	ectx, err := c.NewKeygenContext(ctx, comp.ID, 11)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			base := float64(i + 1)
			res, err := c.Submit(ctx, comp.ID, ectx.ContextID, []eva.ExecuteBatch{
				{Values: map[string][]float64{"x": {base, base, base, base}}},
			}, eva.SubmitOptions{Coalesce: true})
			if err != nil {
				errs[i] = err
				return
			}
			if res.Coalesced == nil {
				errs[i] = errors.New("coalesced submission returned no Coalesced result")
				return
			}
			got := res.Coalesced.Result.Values["out"]
			want := base * base
			if len(got) == 0 || got[0] < want-0.05 || got[0] > want+0.05 {
				errs[i] = fmt.Errorf("caller %d out = %v; want ~%v", i, got, want)
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("caller %d: %v", i, err)
		}
	}
}

// TestClientDeprecatedSubmitWrappers pins the backward-compatible wrappers to
// the consolidated Submit path: a JobRequest submitted through SubmitJob
// still runs.
func TestClientDeprecatedSubmitWrappers(t *testing.T) {
	c := startDemoServer(t, serve.Config{})
	ctx := context.Background()
	comp, err := c.Compile(ctx, eva.CompileRequest{
		Source:  clientProgramSource(),
		Options: &serve.CompileOptionsJSON{AllowInsecure: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	ectx, err := c.NewKeygenContext(ctx, comp.ID, 12)
	if err != nil {
		t.Fatal(err)
	}
	//lint:ignore SA1019 the deprecated wrapper is exactly what this test pins
	job, err := c.SubmitJob(ctx, eva.JobRequest{
		ProgramID: comp.ID,
		ContextID: ectx.ContextID,
		Batches:   []eva.ExecuteBatch{{Values: map[string][]float64{"x": {3, 3, 3, 3, 3, 3, 3, 3}}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	final, err := c.WaitJob(ctx, job.JobID)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != "done" {
		t.Fatalf("final status %+v", final)
	}
}
