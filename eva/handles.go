package eva

import (
	"context"
	"encoding/base64"
	"net/http"

	"eva/internal/handle"
	"eva/internal/serve"
)

// Ciphertext handles and pipelines: the client side of the server's
// content-addressed ciphertext store. StoreCiphertext uploads an encrypted
// vector once; jobs then reference it by id ({"handles": {...}}), pipelines
// chain whole programs server-side, and FetchHandle pulls a persisted
// output back for local decryption.

type (
	// HandleMeta is a stored handle's metadata (content-address id, owning
	// context, level/scale/width for the chaining checker).
	HandleMeta = handle.Meta
	// HandleRecord is the body of GET /handles/{id}: metadata plus the
	// serialized ciphertext.
	HandleRecord = serve.HandleRecordJSON
	// HandleList is the body of GET /handles.
	HandleList = serve.HandleListResponse
	// PipelineRequest is the body of POST /pipelines.
	PipelineRequest = serve.PipelineRequest
	// PipelineStage is one compiled-program stage of a pipeline.
	PipelineStage = serve.PipelineStage
	// InputBinding is the shared wire form of one input binding, accepted by
	// every execution entry point (batches and pipeline stages alike).
	InputBinding = serve.InputBinding
	// PipelineInput binds one program input of a pipeline stage (an
	// InputBinding alias kept for readability at pipeline call sites).
	PipelineInput = serve.PipelineInput
)

// StoreCiphertext uploads a serialized ciphertext (ckks wire format) under
// a context and returns the stored handle's metadata. The operation is
// idempotent: re-storing identical bytes returns the same content address.
func (c *Client) StoreCiphertext(ctx context.Context, contextID string, cipher []byte) (HandleMeta, error) {
	var out HandleMeta
	err := c.do(ctx, http.MethodPut, "/handles", serve.HandlePutRequest{
		ContextID: contextID,
		Cipher:    base64.StdEncoding.EncodeToString(cipher),
	}, &out)
	return out, err
}

// FetchHandle fetches a stored handle's metadata and ciphertext bytes
// (GET /handles/{id}).
func (c *Client) FetchHandle(ctx context.Context, id string) (HandleRecord, error) {
	var out HandleRecord
	err := c.do(ctx, http.MethodGet, "/handles/"+id, nil, &out)
	return out, err
}

// ListHandles lists the stored handles and the registry's counters.
func (c *Client) ListHandles(ctx context.Context) (HandleList, error) {
	var out HandleList
	err := c.do(ctx, http.MethodGet, "/handles", nil, &out)
	return out, err
}

// DeleteHandle removes a stored handle (DELETE /handles/{id}). The call is
// not safely retryable: a replay can race a concurrent re-store of the same
// content and delete the new copy — use RetryPolicy.Method/Path so
// DoWithRetry refuses to replay it.
func (c *Client) DeleteHandle(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/handles/"+id, nil, nil)
}

// SubmitPipeline submits a multi-stage encrypted pipeline (POST /pipelines)
// and returns immediately with the pipeline job's id; poll or wait on it
// like any async job. Incompatible stage chaining fails the submit with a
// structured 422 (APIError).
func (c *Client) SubmitPipeline(ctx context.Context, req PipelineRequest) (JobStatusInfo, error) {
	var out JobStatusInfo
	err := c.do(ctx, http.MethodPost, "/pipelines", req, &out)
	return out, err
}

// WaitPipeline blocks until a submitted pipeline reaches a terminal status
// and fetches its per-stage results (delivered exactly once).
func (c *Client) WaitPipeline(ctx context.Context, jobID string) (JobResult, error) {
	st, err := c.WaitJob(ctx, jobID)
	if err != nil {
		return JobResult{}, err
	}
	if st.Status != "done" {
		return JobResult{}, &APIError{Status: http.StatusConflict,
			Message: "pipeline " + jobID + " finished " + st.Status + ": " + st.Error}
	}
	return c.FetchJobResult(ctx, jobID)
}
