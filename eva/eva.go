// Package eva is the public API of the EVA (Encrypted Vector Arithmetic)
// framework: a language, optimizing compiler, and runtime for writing
// programs that execute on encrypted data under the RNS-CKKS homomorphic
// encryption scheme, following "EVA: An Encrypted Vector Arithmetic Language
// and Compiler for Efficient Homomorphic Computation" (PLDI 2020).
//
// A typical workflow has four steps:
//
//  1. Build a program with NewBuilder (the PyEVA-style frontend): declare
//     encrypted inputs, combine them with Add/Sub/Mul/Rotate expressions, and
//     mark outputs together with their desired fixed-point scales.
//
//  2. Compile the program. The compiler inserts the FHE-specific RESCALE,
//     MOD_SWITCH and RELINEARIZE instructions, validates every scheme
//     constraint, and selects encryption parameters and rotation steps.
//
//  3. Generate keys and encrypt the inputs with NewContext and EncryptInputs
//     (the client side).
//
//  4. Execute with Run (the server side) and decrypt with DecryptOutputs
//     (back on the client).
//
// The reference executor RunReference evaluates the same program on
// unencrypted data and is useful for testing and accuracy comparisons.
package eva

import (
	"context"
	"io"

	"eva/internal/builder"
	"eva/internal/ckks"
	"eva/internal/compile"
	"eva/internal/core"
	"eva/internal/execute"
	"eva/internal/lang"
	"eva/internal/rewrite"
)

// Builder constructs EVA input programs (the PyEVA-equivalent frontend).
type Builder = builder.Builder

// Expr is an expression handle produced by a Builder.
type Expr = builder.Expr

// Program is an EVA program graph (input, intermediate, or executable form).
type Program = core.Program

// NewBuilder returns a program builder for vectors of the given power-of-two size.
func NewBuilder(name string, vecSize int) *Builder { return builder.New(name, vecSize) }

// CompileOptions configures the compiler; the zero value of each field means
// the paper's default (waterline rescaling, eager modulus switching, 60-bit
// maximum rescale, 128-bit-secure parameters).
type CompileOptions = compile.Options

// Compiled is the result of compilation: the transformed program, the
// encryption-parameter plan, and the rotation steps.
type Compiled = compile.Result

// Compile runs the EVA compiler on an input program.
func Compile(p *Program, opts CompileOptions) (*Compiled, error) { return compile.Compile(p, opts) }

// DefaultCompileOptions returns the paper's default compiler configuration.
func DefaultCompileOptions() CompileOptions { return compile.DefaultOptions() }

// Rescale/modulus-switch strategies, exposed for ablation studies.
const (
	RescaleWaterline = rewrite.RescaleWaterline
	RescaleAlways    = rewrite.RescaleAlways
	ModSwitchEager   = rewrite.ModSwitchEager
	ModSwitchLazy    = rewrite.ModSwitchLazy
)

// Context bundles the CKKS runtime objects for a compiled program.
type Context = execute.Context

// KeyMaterial is the key set (secret, public, relinearization, rotation keys).
type KeyMaterial = execute.KeyMaterial

// Inputs maps input names to plaintext vectors.
type Inputs = execute.Inputs

// EncryptedInputs is the client-side encrypted input bundle.
type EncryptedInputs = execute.EncryptedInputs

// Outputs is the result of an encrypted execution.
type Outputs = execute.Outputs

// RunOptions configures the executor (worker count and scheduler).
type RunOptions = execute.RunOptions

// Schedulers available to Run.
const (
	SchedulerParallel        = execute.SchedulerParallel
	SchedulerBulkSynchronous = execute.SchedulerBulkSynchronous
	SchedulerSequential      = execute.SchedulerSequential
)

// PRNG is the deterministic random source used by key generation and
// encryption; pass nil to the functions below for a securely seeded default.
type PRNG = ckks.PRNG

// NewTestPRNG returns a deterministic PRNG for reproducible tests and benchmarks.
func NewTestPRNG(seed uint64) *PRNG { return ckks.NewTestPRNG(seed) }

// NewContext generates encryption parameters and all key material for a
// compiled program.
func NewContext(c *Compiled, prng *PRNG) (*Context, *KeyMaterial, error) {
	return execute.NewContext(c, prng)
}

// EncryptInputs encodes and encrypts the program's Cipher inputs.
func EncryptInputs(ctx *Context, c *Compiled, keys *KeyMaterial, values Inputs, prng *PRNG) (*EncryptedInputs, error) {
	return execute.EncryptInputs(ctx, c, keys, values, prng)
}

// Run executes a compiled program homomorphically.
func Run(ctx *Context, c *Compiled, in *EncryptedInputs, opts RunOptions) (*Outputs, error) {
	return execute.Run(ctx, c, in, opts)
}

// RunContext is Run with cancellation: cancelling stdctx stops the DAG
// scheduler promptly (in-flight CKKS kernels finish, nothing new starts) and
// returns the context's error. RunOptions.Progress, when set, receives one
// serialized callback per completed instruction.
func RunContext(stdctx context.Context, ctx *Context, c *Compiled, in *EncryptedInputs, opts RunOptions) (*Outputs, error) {
	return execute.RunContext(stdctx, ctx, c, in, opts)
}

// DecryptOutputs decrypts and decodes the outputs of Run.
func DecryptOutputs(ctx *Context, c *Compiled, keys *KeyMaterial, out *Outputs) map[string][]float64 {
	values, _ := execute.DecryptOutputs(ctx, c, keys, out)
	return values
}

// RunReference executes a program on unencrypted data (the reference
// semantics of the EVA language).
func RunReference(p *Program, values Inputs) (map[string][]float64, error) {
	return execute.RunReference(p, values)
}

// SerializeProgram writes a program to w in the JSON program format (the
// paper's Figure 1 schema) — the wire format accepted by the evac compiler
// driver and the evaserve /compile endpoint.
func SerializeProgram(p *Program, w io.Writer) error { return p.Serialize(w) }

// DeserializeProgram reads a program in the JSON program format.
func DeserializeProgram(r io.Reader) (*Program, error) { return core.Deserialize(r) }

// ParseSource compiles textual EVA source (the .eva language — see the
// README's Language section for the grammar) into a Program. Source text is
// the third program representation next to the builder API and the JSON wire
// format; all three lower to the same IR. On failure the error is a list of
// positioned diagnostics (line, column, source snippet).
func ParseSource(src string) (*Program, error) { return lang.ParseProgram(src) }

// FormatProgram renders any Program — input or compiled — as canonical EVA
// source text. Parsing the result reproduces the program exactly, so
// FormatProgram/ParseSource give a lossless textual form for diffing,
// storing, or POSTing to the evaserve /compile endpoint's "source" field.
func FormatProgram(p *Program) (string, error) { return lang.Print(p) }

// ParametersLiteral is the portable description of a CKKS parameter set, as
// reported by Compiled.ParametersLiteral and by the evaserve /compile
// endpoint. A client can reconstruct the server's exact parameters from it
// and generate matching key material locally.
type ParametersLiteral = ckks.ParametersLiteral

// RelinearizationKey and RotationKeySet are the public evaluation keys a
// client ships to an untrusted server (both implement
// encoding.BinaryMarshaler/BinaryUnmarshaler for the wire).
type (
	RelinearizationKey = ckks.RelinearizationKey
	RotationKeySet     = ckks.RotationKeySet
)

// NewEvaluationContext builds the server-side execution context from public
// evaluation keys supplied by a client, without the secret key — the paper's
// deployment model. rtk may be nil when the program performs no rotations,
// and rlk may be nil when it never relinearizes.
func NewEvaluationContext(c *Compiled, rlk *RelinearizationKey, rtk *RotationKeySet) (*Context, error) {
	return execute.NewEvaluationContext(c, rlk, rtk)
}
