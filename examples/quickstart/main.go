// Quickstart: the smallest end-to-end EVA workflow.
//
// It builds a tiny program that computes 0.5·(x² + y) on an encrypted vector,
// compiles it, generates keys, encrypts the inputs, runs the program on the
// encrypted data, decrypts the result, and compares it against the
// unencrypted reference execution.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"

	"eva/eva"
)

const vecSize = 8

// buildProgram writes the program with the builder frontend. Scales are
// given as log2 values: the inputs are encoded with 30 fractional bits.
// The same program in the textual EVA language is quickstart.eva next to
// this file (compile it with `evac -src quickstart.eva`).
func buildProgram() (*eva.Program, error) {
	b := eva.NewBuilder("quickstart", vecSize)
	x := b.Input("x", 30)
	y := b.Input("y", 30)
	result := x.Square().Add(y).MulScalar(0.5, 30)
	b.Output("result", result, 30)
	return b.Program()
}

func main() {
	// Step 1: build the program.
	program, err := buildProgram()
	if err != nil {
		log.Fatal(err)
	}

	// Step 2: compile. The compiler inserts RESCALE/MOD_SWITCH/RELINEARIZE,
	// validates every CKKS constraint, and picks encryption parameters.
	// (AllowInsecure keeps the ring small for this toy-sized example; drop it
	// for production parameters.)
	opts := eva.DefaultCompileOptions()
	opts.AllowInsecure = true
	compiled, err := eva.Compile(program, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("compiled:", compiled.Summary())

	// Step 3: client side — generate keys and encrypt the inputs.
	ctx, keys, err := eva.NewContext(compiled, nil)
	if err != nil {
		log.Fatal(err)
	}
	inputs := eva.Inputs{
		"x": {1, 2, 3, 4, 5, 6, 7, 8},
		"y": {8, 7, 6, 5, 4, 3, 2, 1},
	}
	encrypted, err := eva.EncryptInputs(ctx, compiled, keys, inputs, nil)
	if err != nil {
		log.Fatal(err)
	}

	// Step 4: server side — run the program on encrypted data only.
	outputs, err := eva.Run(ctx, compiled, encrypted, eva.RunOptions{Scheduler: eva.SchedulerParallel})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("executed %d instructions in %v\n", outputs.Stats.Instructions, outputs.Stats.WallTime.Round(1e6))

	// Step 5: client side — decrypt and compare with the reference semantics.
	decrypted := eva.DecryptOutputs(ctx, compiled, keys, outputs)
	reference, err := eva.RunReference(program, inputs)
	if err != nil {
		log.Fatal(err)
	}
	maxErr := 0.0
	for i := 0; i < vecSize; i++ {
		maxErr = math.Max(maxErr, math.Abs(decrypted["result"][i]-reference["result"][i]))
	}
	fmt.Println("encrypted result :", roundAll(decrypted["result"]))
	fmt.Println("expected         :", reference["result"])
	fmt.Printf("maximum error    : %.2e\n", maxErr)
}

func roundAll(v []float64) []float64 {
	out := make([]float64, len(v))
	for i := range v {
		out[i] = math.Round(v[i]*1e4) / 1e4
	}
	return out
}
