package main

import (
	"os"
	"testing"

	"eva/internal/core"
	"eva/internal/lang"
)

// TestSourceMatchesBuilder asserts quickstart.eva lowers to exactly the
// program main.go builds through the builder frontend, so the two
// representations can never drift apart.
func TestSourceMatchesBuilder(t *testing.T) {
	src, err := os.ReadFile("quickstart.eva")
	if err != nil {
		t.Fatal(err)
	}
	fromSource, err := lang.ParseProgram(string(src))
	if err != nil {
		t.Fatal(err)
	}
	fromBuilder, err := buildProgram()
	if err != nil {
		t.Fatal(err)
	}
	if err := core.Equal(fromBuilder, fromSource); err != nil {
		t.Fatalf("quickstart.eva does not match the builder program: %v", err)
	}
}
