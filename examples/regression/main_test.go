package main

import (
	"os"
	"testing"

	"eva/internal/apps"
	"eva/internal/core"
	"eva/internal/lang"
)

// TestSourcesMatchBuilders asserts each regression .eva file lowers to
// exactly the program the corresponding apps constructor builds at the
// example's default 512 samples.
func TestSourcesMatchBuilders(t *testing.T) {
	cases := []struct {
		file  string
		build func() (*apps.App, error)
	}{
		{"linear.eva", func() (*apps.App, error) { return apps.LinearRegression(512) }},
		{"polynomial.eva", func() (*apps.App, error) { return apps.PolynomialRegression(512) }},
		{"multivariate.eva", func() (*apps.App, error) { return apps.MultivariateRegression(512, 4) }},
	}
	for _, tc := range cases {
		t.Run(tc.file, func(t *testing.T) {
			src, err := os.ReadFile(tc.file)
			if err != nil {
				t.Fatal(err)
			}
			fromSource, err := lang.ParseProgram(string(src))
			if err != nil {
				t.Fatal(err)
			}
			app, err := tc.build()
			if err != nil {
				t.Fatal(err)
			}
			if err := core.Equal(app.Program, fromSource); err != nil {
				t.Fatalf("%s does not match the builder program: %v", tc.file, err)
			}
		})
	}
}
