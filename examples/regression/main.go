// Statistical machine learning on encrypted data: linear, polynomial and
// multivariate regression (Section 8.3), evaluated in a single run.
//
// The server holds the (public) regression models; the client's feature
// vectors remain encrypted end to end.
//
// Run with:
//
//	go run ./examples/regression [-samples 512]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"

	"eva/eva"
	"eva/internal/apps"
)

func main() {
	samples := flag.Int("samples", 512, "number of samples packed in one ciphertext (power of two)")
	flag.Parse()

	rng := rand.New(rand.NewSource(7))
	linear, err := apps.LinearRegression(*samples)
	if err != nil {
		log.Fatal(err)
	}
	poly, err := apps.PolynomialRegression(*samples)
	if err != nil {
		log.Fatal(err)
	}
	multi, err := apps.MultivariateRegression(*samples, 4)
	if err != nil {
		log.Fatal(err)
	}

	for _, app := range []*apps.App{linear, poly, multi} {
		inputs := app.MakeInputs(rng)
		expected := app.Plain(inputs)

		opts := eva.DefaultCompileOptions()
		opts.AllowInsecure = true
		compiled, err := eva.Compile(app.Program, opts)
		if err != nil {
			log.Fatalf("%s: %v", app.Name, err)
		}
		ctx, keys, err := eva.NewContext(compiled, nil)
		if err != nil {
			log.Fatal(err)
		}
		encrypted, err := eva.EncryptInputs(ctx, compiled, keys, inputs, nil)
		if err != nil {
			log.Fatal(err)
		}
		outputs, err := eva.Run(ctx, compiled, encrypted, eva.RunOptions{})
		if err != nil {
			log.Fatal(err)
		}
		decrypted := eva.DecryptOutputs(ctx, compiled, keys, outputs)

		maxErr := 0.0
		for name, want := range expected {
			got := decrypted[name]
			for i := range want {
				maxErr = math.Max(maxErr, math.Abs(got[i]-want[i]))
			}
		}
		fmt.Printf("%-26s  %3d instructions  %8v  max error %.2e  (params: %s)\n",
			app.Name, outputs.Stats.Instructions, outputs.Stats.WallTime.Round(1e5),
			maxErr, fmt.Sprintf("logN=%d, %d primes", compiled.LogN, compiled.Plan.NumPrimes()))
		fmt.Printf("    first predictions (encrypted): %v\n", round4(decrypted[firstOutput(expected)][:4]))
		fmt.Printf("    first predictions (expected) : %v\n", round4(expected[firstOutput(expected)][:4]))
	}
}

func firstOutput(m map[string][]float64) string {
	for k := range m {
		return k
	}
	return ""
}

func round4(v []float64) []float64 {
	out := make([]float64, len(v))
	for i := range v {
		out[i] = math.Round(v[i]*1e4) / 1e4
	}
	return out
}
