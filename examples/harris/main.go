// Harris corner detection on an encrypted image — the most complex CKKS
// application evaluated in the paper (Section 8.3).
//
// A synthetic image containing a bright rectangle is encrypted and the Harris
// corner response is computed homomorphically; the four corners of the
// rectangle should carry the strongest responses.
//
// Run with:
//
//	go run ./examples/harris [-size 16] [-workers 4]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"sort"

	"eva/eva"
	"eva/internal/apps"
)

func main() {
	size := flag.Int("size", 16, "image side length (power of two)")
	workers := flag.Int("workers", 0, "executor threads (0 = GOMAXPROCS)")
	flag.Parse()

	app, err := apps.HarrisCornerDetection(*size)
	if err != nil {
		log.Fatal(err)
	}

	// Bright rectangle on a dark background; its four corners are the ground truth.
	lo, hi := *size/4, 3**size/4-1
	img := make([]float64, *size**size)
	for r := lo; r <= hi; r++ {
		for c := lo; c <= hi; c++ {
			img[r**size+c] = 0.8
		}
	}
	inputs := eva.Inputs{"image": img}

	opts := eva.DefaultCompileOptions()
	opts.AllowInsecure = true
	compiled, err := eva.Compile(app.Program, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("compiled:", compiled.Summary())
	fmt.Printf("rotation keys needed: %d, multiplicative depth: %d\n",
		len(compiled.RotationSteps), compiled.CompiledStats.MultDepth)

	ctx, keys, err := eva.NewContext(compiled, nil)
	if err != nil {
		log.Fatal(err)
	}
	encrypted, err := eva.EncryptInputs(ctx, compiled, keys, inputs, nil)
	if err != nil {
		log.Fatal(err)
	}
	outputs, err := eva.Run(ctx, compiled, encrypted, eva.RunOptions{Workers: *workers})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("homomorphic Harris detection took %v\n", outputs.Stats.WallTime.Round(1e6))

	response := eva.DecryptOutputs(ctx, compiled, keys, outputs)["response"]
	reference := app.Plain(inputs)["response"]
	maxErr := 0.0
	for i := range reference {
		maxErr = math.Max(maxErr, math.Abs(response[i]-reference[i]))
	}
	fmt.Printf("maximum error vs unencrypted Harris: %.2e\n\n", maxErr)

	// Report the strongest responses; they should sit at the rectangle corners.
	type peak struct {
		r, c  int
		value float64
	}
	var peaks []peak
	for r := 0; r < *size; r++ {
		for c := 0; c < *size; c++ {
			peaks = append(peaks, peak{r, c, response[r**size+c]})
		}
	}
	sort.Slice(peaks, func(i, j int) bool { return peaks[i].value > peaks[j].value })
	fmt.Println("strongest encrypted corner responses (row, col, value):")
	for i := 0; i < 4 && i < len(peaks); i++ {
		fmt.Printf("  (%2d, %2d)  %.4f\n", peaks[i].r, peaks[i].c, peaks[i].value)
	}
	fmt.Printf("rectangle corners in the input image: (%d,%d) (%d,%d) (%d,%d) (%d,%d)\n",
		lo, lo, lo, hi, hi, lo, hi, hi)
}
