package main

import (
	"os"
	"testing"

	"eva/internal/apps"
	"eva/internal/core"
	"eva/internal/lang"
)

// TestSourceMatchesBuilder asserts sobel.eva lowers to exactly the program
// apps.SobelFilter builds for the example's default 16×16 image.
func TestSourceMatchesBuilder(t *testing.T) {
	src, err := os.ReadFile("sobel.eva")
	if err != nil {
		t.Fatal(err)
	}
	fromSource, err := lang.ParseProgram(string(src))
	if err != nil {
		t.Fatal(err)
	}
	app, err := apps.SobelFilter(16)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.Equal(app.Program, fromSource); err != nil {
		t.Fatalf("sobel.eva does not match the builder program: %v", err)
	}
}
