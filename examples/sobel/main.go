// Sobel edge detection on an encrypted image (the PyEVA example of Figure 6).
//
// A synthetic image with a bright square is encrypted, the Sobel gradient
// magnitude is computed entirely under encryption, and the decrypted edge map
// is rendered as ASCII art next to the unencrypted reference.
//
// Run with:
//
//	go run ./examples/sobel [-size 16] [-secure]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"strings"

	"eva/eva"
	"eva/internal/apps"
)

func main() {
	size := flag.Int("size", 16, "image side length (power of two)")
	secure := flag.Bool("secure", false, "use 128-bit-secure encryption parameters (slower)")
	flag.Parse()

	app, err := apps.SobelFilter(*size)
	if err != nil {
		log.Fatal(err)
	}

	// A dark image with a bright rectangle in the middle: its outline is what
	// the Sobel filter should find.
	img := make([]float64, *size**size)
	for r := *size / 4; r < 3**size/4; r++ {
		for c := *size / 4; c < 3**size/4; c++ {
			img[r**size+c] = 0.8
		}
	}
	inputs := eva.Inputs{"image": img}

	opts := eva.DefaultCompileOptions()
	opts.AllowInsecure = !*secure
	compiled, err := eva.Compile(app.Program, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("compiled:", compiled.Summary())

	ctx, keys, err := eva.NewContext(compiled, nil)
	if err != nil {
		log.Fatal(err)
	}
	encrypted, err := eva.EncryptInputs(ctx, compiled, keys, inputs, nil)
	if err != nil {
		log.Fatal(err)
	}
	outputs, err := eva.Run(ctx, compiled, encrypted, eva.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("homomorphic Sobel filtering took %v (%d instructions)\n",
		outputs.Stats.WallTime.Round(1e6), outputs.Stats.Instructions)

	decrypted := eva.DecryptOutputs(ctx, compiled, keys, outputs)["edges"]
	reference := app.Plain(inputs)["edges"]

	maxErr := 0.0
	for i := range reference {
		maxErr = math.Max(maxErr, math.Abs(decrypted[i]-reference[i]))
	}
	fmt.Printf("maximum error vs unencrypted Sobel: %.2e\n\n", maxErr)
	fmt.Println("encrypted edge map:          reference edge map:")
	printSideBySide(decrypted, reference, *size)
}

// printSideBySide renders two edge maps as ASCII intensity art.
func printSideBySide(a, b []float64, size int) {
	shades := " .:-=+*#%@"
	row := func(v []float64, r int) string {
		var sb strings.Builder
		for c := 0; c < size; c++ {
			x := v[r*size+c]
			idx := int(math.Abs(x) / 1.6 * float64(len(shades)))
			if idx >= len(shades) {
				idx = len(shades) - 1
			}
			if idx < 0 {
				idx = 0
			}
			sb.WriteByte(shades[idx])
		}
		return sb.String()
	}
	for r := 0; r < size; r++ {
		fmt.Printf("%s    %s\n", row(a, r), row(b, r))
	}
}
