// Encrypted neural-network inference through the tensor frontend (the CHET
// retargeting of Section 7.2): a LeNet-5-style network classifies an
// encrypted image, and the same program is also compiled with the CHET-style
// baseline pipeline so the encryption-parameter and latency differences that
// drive Tables 5 and 6 can be observed directly.
//
// Run with:
//
//	go run ./examples/lenet [-divisor 8] [-input 8] [-workers 4]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"time"

	"eva/eva"
	"eva/internal/chet"
	"eva/internal/nn"
)

func main() {
	divisor := flag.Int("divisor", 8, "channel divisor (1 = paper-scale channel counts)")
	inputSize := flag.Int("input", 8, "input image side (power of two)")
	workers := flag.Int("workers", 0, "executor threads (0 = GOMAXPROCS)")
	flag.Parse()

	cfg := nn.Config{InputSize: *inputSize, ChannelDivisor: *divisor}
	network := nn.LeNet5Small(cfg)
	rng := rand.New(rand.NewSource(3))
	weights := nn.RandomWeights(network, rng)

	program, err := nn.BuildProgram(network, weights)
	if err != nil {
		log.Fatal(err)
	}
	image := nn.RandomImage(network, rng)
	reference, err := eva.RunReference(program, image)
	if err != nil {
		log.Fatal(err)
	}
	refScores := reference["scores"][:network.NumClasses]
	fmt.Printf("network %s: %d-term tensor program, multiplicative depth %d\n",
		network.Name, program.NumTerms(), program.MultiplicativeDepth())

	opts := eva.DefaultCompileOptions()
	opts.AllowInsecure = true

	// EVA pipeline.
	evaCompiled, err := eva.Compile(program, opts)
	if err != nil {
		log.Fatal(err)
	}
	// CHET baseline pipeline on the exact same tensor program.
	chetCompiled, err := chet.Compile(program, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("EVA  parameters: logN=%d, logQ=%d bits, %d primes\n",
		evaCompiled.LogN, evaCompiled.Plan.LogQP(), evaCompiled.Plan.NumPrimes())
	fmt.Printf("CHET parameters: logN=%d, logQ=%d bits, %d primes\n",
		chetCompiled.LogN, chetCompiled.Plan.LogQP(), chetCompiled.Plan.NumPrimes())

	type pipeline struct {
		name     string
		compiled *eva.Compiled
		options  eva.RunOptions
	}
	pipelines := []pipeline{
		{"EVA", evaCompiled, eva.RunOptions{Workers: *workers, Scheduler: eva.SchedulerParallel}},
		{"CHET", chetCompiled, eva.RunOptions{Workers: *workers, Scheduler: eva.SchedulerBulkSynchronous}},
	}
	latencies := map[string]time.Duration{}
	for _, pl := range pipelines {
		ctx, keys, err := eva.NewContext(pl.compiled, nil)
		if err != nil {
			log.Fatal(err)
		}
		encrypted, err := eva.EncryptInputs(ctx, pl.compiled, keys, image, nil)
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		outputs, err := eva.Run(ctx, pl.compiled, encrypted, pl.options)
		if err != nil {
			log.Fatal(err)
		}
		latencies[pl.name] = time.Since(start)
		scores := eva.DecryptOutputs(ctx, pl.compiled, keys, outputs)["scores"][:network.NumClasses]

		maxErr := 0.0
		for i := range refScores {
			maxErr = math.Max(maxErr, math.Abs(scores[i]-refScores[i]))
		}
		fmt.Printf("%-4s inference: %8v  predicted class %d (reference %d)  max score error %.2e\n",
			pl.name, latencies[pl.name].Round(1e6),
			nn.Argmax(scores, network.NumClasses), nn.Argmax(refScores, network.NumClasses), maxErr)
	}
	if latencies["EVA"] > 0 {
		fmt.Printf("speedup of EVA over the CHET baseline: %.2fx\n",
			float64(latencies["CHET"])/float64(latencies["EVA"]))
	}
}
