package main

import (
	"math/rand"
	"os"
	"testing"

	"eva/internal/core"
	"eva/internal/lang"
	"eva/internal/nn"
)

// TestSourceMatchesBuilder asserts lenet.eva lowers to exactly the tensor
// program nn.BuildProgram produces for LeNet-5-small at the smallest
// configuration with the fixed seed the file was generated from. The weights
// are baked into the source as vector constants, so this also exercises the
// frontend on a real multi-hundred-term machine-generated program.
func TestSourceMatchesBuilder(t *testing.T) {
	src, err := os.ReadFile("lenet.eva")
	if err != nil {
		t.Fatal(err)
	}
	fromSource, err := lang.ParseProgram(string(src))
	if err != nil {
		t.Fatal(err)
	}

	cfg := nn.Config{InputSize: 4, ChannelDivisor: 64}
	net := nn.LeNet5Small(cfg)
	rng := rand.New(rand.NewSource(3))
	weights := nn.RandomWeights(net, rng)
	fromBuilder, err := nn.BuildProgram(net, weights)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.Equal(fromBuilder, fromSource); err != nil {
		t.Fatalf("lenet.eva does not match the tensor-frontend program: %v", err)
	}
}
