// Path length: the secure fitness-tracking scenario of Section 8.3.
//
// A mobile client records a walk as a sequence of 3-dimensional displacement
// steps, encrypts them, and offloads the path-length computation
// sum_i sqrt(dx_i² + dy_i² + dz_i²) to an untrusted server; only the client
// can decrypt the total distance.
//
// Run with:
//
//	go run ./examples/pathlength [-steps 256]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"

	"eva/eva"
	"eva/internal/apps"
)

func main() {
	steps := flag.Int("steps", 256, "number of recorded steps (power of two)")
	flag.Parse()

	app, err := apps.PathLength3D(*steps)
	if err != nil {
		log.Fatal(err)
	}

	// Simulate a walk: mostly forward motion with some jitter. Step norms are
	// kept within the range where the cubic sqrt approximation is accurate.
	rng := rand.New(rand.NewSource(42))
	dx := make([]float64, *steps)
	dy := make([]float64, *steps)
	dz := make([]float64, *steps)
	exact := 0.0
	for i := range dx {
		dx[i] = 0.5 + 0.2*rng.Float64()
		dy[i] = 0.3 * (rng.Float64() - 0.5)
		dz[i] = 0.05 * (rng.Float64() - 0.5)
		exact += math.Sqrt(dx[i]*dx[i] + dy[i]*dy[i] + dz[i]*dz[i])
	}
	inputs := eva.Inputs{"dx": dx, "dy": dy, "dz": dz}

	opts := eva.DefaultCompileOptions()
	opts.AllowInsecure = true // keep the demo small; use -secure parameters in production
	compiled, err := eva.Compile(app.Program, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("compiled:", compiled.Summary())

	ctx, keys, err := eva.NewContext(compiled, nil)
	if err != nil {
		log.Fatal(err)
	}
	encrypted, err := eva.EncryptInputs(ctx, compiled, keys, inputs, nil)
	if err != nil {
		log.Fatal(err)
	}
	outputs, err := eva.Run(ctx, compiled, encrypted, eva.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	total := eva.DecryptOutputs(ctx, compiled, keys, outputs)["length"][0]

	approx := app.Plain(inputs)["length"][0]
	fmt.Printf("homomorphic execution took %v over %d instructions\n",
		outputs.Stats.WallTime.Round(1e6), outputs.Stats.Instructions)
	fmt.Printf("encrypted path length          : %.4f\n", total)
	fmt.Printf("plain polynomial approximation : %.4f\n", approx)
	fmt.Printf("exact path length              : %.4f\n", exact)
	fmt.Printf("encryption error               : %.2e\n", math.Abs(total-approx))
	fmt.Printf("approximation error (sqrt poly): %.2e\n", math.Abs(approx-exact))
}
