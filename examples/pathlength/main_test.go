package main

import (
	"os"
	"testing"

	"eva/internal/apps"
	"eva/internal/core"
	"eva/internal/lang"
)

// TestSourceMatchesBuilder asserts pathlength.eva lowers to exactly the
// program apps.PathLength3D builds for the example's default 256 steps.
func TestSourceMatchesBuilder(t *testing.T) {
	src, err := os.ReadFile("pathlength.eva")
	if err != nil {
		t.Fatal(err)
	}
	fromSource, err := lang.ParseProgram(string(src))
	if err != nil {
		t.Fatal(err)
	}
	app, err := apps.PathLength3D(256)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.Equal(app.Program, fromSource); err != nil {
		t.Fatalf("pathlength.eva does not match the builder program: %v", err)
	}
}
